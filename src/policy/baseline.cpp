#include "policy/baseline.hpp"

namespace mapa::policy {

std::optional<AllocationResult> BaselinePolicy::allocate(
    const graph::Graph& hardware, const std::vector<bool>& busy,
    const AllocationRequest& request) {
  check_inputs(hardware, busy, request);
  const std::size_t wanted = request.pattern->num_vertices();
  if (free_count(busy) < wanted) return std::nullopt;

  // Lowest available device ids, assigned to pattern vertices in order —
  // the Nvidia Docker behavior: no pattern or topology awareness at all.
  match::Match m;
  m.mapping.reserve(wanted);
  for (graph::VertexId v = 0;
       v < hardware.num_vertices() && m.mapping.size() < wanted; ++v) {
    if (!busy[v]) m.mapping.push_back(v);
  }
  return score_result(hardware, busy, request, std::move(m), config_);
}

}  // namespace mapa::policy
