#pragma once
// Allocation-state match cache. The simulation engine replays thousands of
// jobs against a fleet whose busy/free state cycles through a small set of
// configurations, so the same (pattern shape, free-GPU set) enumeration is
// re-run constantly — the paper's own overhead study (Fig. 19) shows that
// search is the dominant scheduling cost. This cache keys the
// symmetry-broken match list by
//
//   (canonical pattern hash, free-GPU mask, backend + symmetry flags)
//
// folded into ONE unified 64-bit fingerprint per lookup, and replays
// stored enumerations instead of re-searching. The pattern hash is the
// adjacency fingerprint (the pattern factories build each shape with one
// fixed labeling, so repeat jobs of one shape share an entry); the
// free-GPU mask enters as VertexMask::fingerprint(), a 64-bit hash over
// (size, words...) — fixed-width whether the fleet state is a single DGX
// word or a 16-word pod mask, with no per-lookup word-array copy. The
// three fields are mixed into a single unified fingerprint that is the
// entire key: equality is fingerprint equality, so a false hit needs two
// live states to collide in 64 bits, and with <= max_entries (default
// 256) states resident the birthday bound puts that around 2^-52 per
// workload — far below any failure rate the simulator can observe.
// The cache pins the hardware graph's topology fingerprint (adjacency +
// link bandwidths, graph::topology_fingerprint) and invalidates itself
// wholesale when a different hardware graph shows up — including a
// link-degraded fork of the pinned one, whose structure is identical but
// whose bandwidths are not. Entries are
// LRU-evicted. Keys whose match set exceeds `max_matches_per_entry` are
// bypassed, not stored: the fingerprint goes into a side set (a few bytes
// per key, never an LRU entry), later calls enumerate live, and one
// 10^7-match search can neither blow up memory nor evict the small
// replayable entries that earn the cache its keep.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/bitgraph.hpp"
#include "graph/graph.hpp"
#include "match/enumerator.hpp"
#include "match/match.hpp"

namespace mapa::policy {

/// Outcome of one probe-mode cache lookup (see
/// MatchCache::for_each_match's `ticket` parameter). Parallel probe
/// workers each fill a ticket; the dispatcher then commits the tickets
/// sequentially in server order via MatchCache::commit_probe, which is
/// where ALL stats counting and LRU/eviction mutation happens — so the
/// hit/miss/bypass split and the eviction order depend only on the
/// server order, never on which worker thread won a race. The
/// classification itself is symmetric: every probe of a key that was
/// absent when the batch began gets kStagedStore/kStagedOversized,
/// whether it did the enumeration or replayed the staged result, and
/// commit_probe charges the one miss to the first committer.
class CacheProbeTicket {
 public:
  enum class Kind {
    kNone,             // no cache lookup happened (ticket untouched)
    kHit,              // replayed a committed entry
    kBypass,           // key in the committed oversized set, enumerated live
    kStagedStore,      // key absent at batch start; replayable result staged
    kStagedOversized,  // key absent at batch start; oversized, streamed live
    kStagedDelta,      // key absent; filtered from a superset-state entry
    kUnreplayable,     // enumerated, but early-stopped: nothing to stage
  };

  Kind kind() const { return kind_; }
  std::uint64_t key() const { return key_; }

 private:
  friend class MatchCache;
  Kind kind_ = Kind::kNone;
  std::uint64_t key_ = 0;
};

struct MatchCacheConfig {
  /// LRU capacity in entries (distinct fleet states x pattern shapes).
  std::size_t max_entries = 256;
  /// Match lists longer than this are bypassed, never stored: the key's
  /// unified fingerprint is remembered in a side set (no LRU slot) and
  /// later calls enumerate live.
  std::size_t max_matches_per_entry = 1 << 18;
  /// Cap on remembered oversized fingerprints; on overflow the side set
  /// is cleared (the worst case is one wasted re-collection per key).
  std::size_t max_oversized_keys = 4096;
  /// Delta reuse: on an exact-fingerprint miss, derive the match set by
  /// filtering a cached entry of the same pattern shape + flags whose
  /// busy mask is a SUBSET of the current one (a state with strictly more
  /// free GPUs — its match list is a superset, and the DFS emits the
  /// current state's matches as the exact subsequence whose mappings
  /// avoid the extra busy bits). A mask-AND scan per stored match
  /// replaces a full matcher run; output is record-identical by the
  /// subsequence property (tests/policy/test_match_cache.cpp).
  bool enable_delta = true;
  /// Bound on entries indexed per pattern shape for superset lookups; a
  /// stored entry beyond the bound keeps its LRU slot but is not
  /// delta-discoverable.
  std::size_t max_delta_candidates = 8;
};

struct MatchCacheStats {
  std::uint64_t hits = 0;           // replayed a stored match list
  std::uint64_t misses = 0;         // enumerated and (maybe) stored
  std::uint64_t bypasses = 0;       // known-oversized key, enumerated live
  std::uint64_t delta_hits = 0;     // filtered from a superset-state entry
  std::uint64_t invalidations = 0;  // wholesale clears on hardware change
  std::uint64_t evictions = 0;      // LRU evictions
};

class MatchCache {
 public:
  explicit MatchCache(MatchCacheConfig config = {});

  /// Stream the symmetry-broken match set of `pattern` on `hardware`
  /// (restricted by `options.forbidden`, the busy mask) through `visit`, in
  /// the same order the live enumerator produces — replaying the cached
  /// list on a hit, enumerating (and storing) on a miss. Early-stopped
  /// enumerations (visitor returned false) are never stored. Thread-safe,
  /// but the visitor runs under the cache lock; do not re-enter the cache
  /// from inside it. `options.threads` is ignored (replay is sequential).
  ///
  /// With `ticket` non-null the call runs in PROBE mode: the match stream
  /// is identical, but nothing observable about the cache changes — no
  /// stats counting, no LRU touch, no store/eviction. First-seen results
  /// are parked in a staging area keyed by fingerprint (so later probes
  /// of the same key in the same batch replay instead of re-enumerating)
  /// and the outcome is classified into the ticket. The caller must
  /// commit every filled ticket with commit_probe(), in a fixed
  /// (server) order, before the next probe batch.
  void for_each_match(const graph::Graph& pattern,
                      const graph::Graph& hardware,
                      const match::EnumerateOptions& options,
                      const match::MatchVisitor& visit,
                      CacheProbeTicket* ticket = nullptr);

  /// Sequential commit of a probe-mode ticket: counts the hit/miss/
  /// bypass, performs the LRU touch, and on the first commit of a staged
  /// key moves the staged result into the cache proper (with normal
  /// eviction). Resets the ticket to kNone, so committing twice is
  /// harmless. Call in a deterministic order (the fleet commits in
  /// ascending server order) — that order alone decides which probe of a
  /// shared key is the miss and which are the hits.
  void commit_probe(CacheProbeTicket& ticket);

  MatchCacheStats stats() const;
  std::size_t size() const;
  void clear();

 private:
  struct Entry {
    std::uint64_t key = 0;    // unified fingerprint
    std::uint64_t shape = 0;  // pattern + flags part of the key
    graph::VertexMask forbidden;  // the busy mask this list was built for
    std::vector<match::Match> matches;
  };

  /// A probe batch's first result for a key not yet committed: either a
  /// full replayable match list or an oversized marker. Moved into the
  /// cache proper (or the oversized set) by the key's first commit.
  /// `delta` marks a list derived by superset filtering, so every probe
  /// of the key classifies identically whichever arrived first — the
  /// commit-order stats split stays independent of thread count.
  struct StagedEntry {
    bool oversized = false;
    bool delta = false;
    std::uint64_t shape = 0;
    graph::VertexMask forbidden;
    std::vector<match::Match> matches;
  };

  void refresh_hardware_locked(const graph::Graph& hardware);
  void touch_locked(std::list<Entry>::iterator it);
  void store_locked(std::uint64_t key, std::uint64_t shape,
                    graph::VertexMask forbidden,
                    std::vector<match::Match> matches);
  void note_oversized_locked(std::uint64_t key);
  void unregister_shape_locked(std::list<Entry>::iterator it);
  /// Best committed superset-state source for (shape, forbidden), or
  /// entries_.end(): eligible entries hold a busy mask that is a subset
  /// of `forbidden`; among them the shortest match list wins (cheapest
  /// filter), ties toward the oldest registration. Read-only — safe in
  /// probe mode, where committed structures are frozen for the batch.
  std::list<Entry>::iterator delta_source_locked(
      std::uint64_t shape, const graph::VertexMask& forbidden);
  std::vector<match::Match> filter_matches_locked(
      const Entry& source, const graph::VertexMask& forbidden) const;

  mutable std::mutex mutex_;
  MatchCacheConfig config_;
  MatchCacheStats stats_;
  std::uint64_t hardware_fp_ = 0;
  std::size_t hardware_vertices_ = 0;
  bool hardware_seen_ = false;
  std::list<Entry> entries_;  // most recently used first
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::unordered_set<std::uint64_t> oversized_;  // bypassed keys, no LRU slot
  std::unordered_map<std::uint64_t, StagedEntry> staging_;  // probe batch
  /// Superset index: pattern-shape fingerprint -> up to
  /// max_delta_candidates stored entries, in registration order. Bounded
  /// side structure like oversized_: cleared wholesale on hardware change
  /// and clear(), pruned on eviction.
  std::unordered_map<std::uint64_t, std::vector<std::list<Entry>::iterator>>
      shape_index_;
};

/// Fold over the match set keeping the highest-scoring match, through the
/// cache when `cache` is non-null, with exactly `match::best_match`'s
/// tie-breaking (lexicographically smallest mapping). Without a cache this
/// defers to match::best_match, keeping the parallel-scoring path.
/// `ticket` forwards to MatchCache::for_each_match's probe mode (ignored
/// when `cache` is null).
std::optional<match::Match> best_cached_match(
    MatchCache* cache, const graph::Graph& pattern,
    const graph::Graph& hardware, const match::EnumerateOptions& options,
    const std::function<double(const match::Match&)>& scorer,
    CacheProbeTicket* ticket = nullptr);

}  // namespace mapa::policy
