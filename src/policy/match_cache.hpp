#pragma once
// Allocation-state match cache. The simulation engine replays thousands of
// jobs against a fleet whose busy/free state cycles through a small set of
// configurations, so the same (pattern shape, free-GPU set) enumeration is
// re-run constantly — the paper's own overhead study (Fig. 19) shows that
// search is the dominant scheduling cost. This cache keys the
// symmetry-broken match list by
//
//   (canonical pattern hash, free-GPU mask, backend + symmetry flags)
//
// and replays stored enumerations instead of re-searching. The pattern hash
// is the adjacency fingerprint (the pattern factories build each shape with
// one fixed labeling, so repeat jobs of one shape share an entry); the
// free-GPU mask enters the key as VertexMask::fingerprint(), a 64-bit hash
// over (size, words...) — one fixed-width field whether the fleet state is
// a single DGX word or an 8-word rack mask, with no per-lookup word-array
// copy. Key equality is fingerprint equality: a false hit needs two live
// states of one pattern to collide in 64 bits, and with <= max_entries
// (default 256) states resident the birthday bound puts that around 2^-52
// per workload — far below any failure rate the simulator can observe.
// The cache pins the hardware graph's fingerprint and invalidates itself
// wholesale when a different hardware graph shows up. Entries are
// LRU-evicted, and match sets above `max_matches_per_entry` are remembered
// as oversized and always enumerated live (bypass) so one 10^7-match
// search cannot blow up memory.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/bitgraph.hpp"
#include "graph/graph.hpp"
#include "match/enumerator.hpp"
#include "match/match.hpp"

namespace mapa::policy {

struct MatchCacheConfig {
  /// LRU capacity in entries (distinct fleet states x pattern shapes).
  std::size_t max_entries = 256;
  /// Match lists longer than this are not stored; the key is remembered as
  /// oversized and later calls enumerate live.
  std::size_t max_matches_per_entry = 1 << 18;
};

struct MatchCacheStats {
  std::uint64_t hits = 0;           // replayed a stored match list
  std::uint64_t misses = 0;         // enumerated and (maybe) stored
  std::uint64_t bypasses = 0;       // known-oversized key, enumerated live
  std::uint64_t invalidations = 0;  // wholesale clears on hardware change
  std::uint64_t evictions = 0;      // LRU evictions
};

class MatchCache {
 public:
  explicit MatchCache(MatchCacheConfig config = {});

  /// Stream the symmetry-broken match set of `pattern` on `hardware`
  /// (restricted by `options.forbidden`, the busy mask) through `visit`, in
  /// the same order the live enumerator produces — replaying the cached
  /// list on a hit, enumerating (and storing) on a miss. Early-stopped
  /// enumerations (visitor returned false) are never stored. Thread-safe,
  /// but the visitor runs under the cache lock; do not re-enter the cache
  /// from inside it. `options.threads` is ignored (replay is sequential).
  void for_each_match(const graph::Graph& pattern,
                      const graph::Graph& hardware,
                      const match::EnumerateOptions& options,
                      const match::MatchVisitor& visit);

  MatchCacheStats stats() const;
  std::size_t size() const;
  void clear();

 private:
  struct Key {
    std::uint64_t pattern_fp = 0;
    std::uint64_t flags = 0;    // backend | (break_symmetry << 8)
    std::uint64_t mask_fp = 0;  // VertexMask::fingerprint() of the busy set
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };
  struct Entry {
    Key key;
    std::vector<match::Match> matches;
    bool oversized = false;
  };

  void refresh_hardware_locked(const graph::Graph& hardware);
  void touch_locked(std::list<Entry>::iterator it);
  void store_locked(Key key, std::vector<match::Match> matches,
                    bool oversized);

  mutable std::mutex mutex_;
  MatchCacheConfig config_;
  MatchCacheStats stats_;
  std::uint64_t hardware_fp_ = 0;
  std::size_t hardware_vertices_ = 0;
  bool hardware_seen_ = false;
  std::list<Entry> entries_;  // most recently used first
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
};

/// Fold over the match set keeping the highest-scoring match, through the
/// cache when `cache` is non-null, with exactly `match::best_match`'s
/// tie-breaking (lexicographically smallest mapping). Without a cache this
/// defers to match::best_match, keeping the parallel-scoring path.
std::optional<match::Match> best_cached_match(
    MatchCache* cache, const graph::Graph& pattern,
    const graph::Graph& hardware, const match::EnumerateOptions& options,
    const std::function<double(const match::Match&)>& scorer);

}  // namespace mapa::policy
