#pragma once
// Topo-aware policy (Amaral et al., the paper's state-of-the-art
// comparator): recursive bi-partitioning of the PCIe/socket hierarchy, in
// effect packing a job's GPUs under the same CPU socket whenever they fit
// (best-fit socket), and spilling across the fewest sockets otherwise.
// Socket-local, but blind to link heterogeneity inside the socket.

#include "policy/policy.hpp"

namespace mapa::policy {

class TopoAwarePolicy final : public Policy {
 public:
  explicit TopoAwarePolicy(PolicyConfig config = {})
      : config_(std::move(config)) {}

  std::string name() const override { return "topo-aware"; }

  std::optional<AllocationResult> allocate(
      const graph::Graph& hardware, const std::vector<bool>& busy,
      const AllocationRequest& request) override;

 private:
  PolicyConfig config_;
};

}  // namespace mapa::policy
