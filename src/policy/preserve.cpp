#include "policy/preserve.hpp"

#include "interconnect/microbench.hpp"
#include "policy/match_cache.hpp"
#include "score/effbw_model.hpp"
#include "score/scores.hpp"

namespace mapa::policy {

std::optional<AllocationResult> PreservePolicy::allocate(
    const graph::Graph& hardware, const std::vector<bool>& busy,
    const AllocationRequest& request) {
  check_inputs(hardware, busy, request);
  if (free_count(busy) < request.pattern->num_vertices()) return std::nullopt;

  match::EnumerateOptions options;
  options.backend = config_.backend;
  options.break_symmetry = config_.break_symmetry;
  options.threads = config_.threads;
  options.forbidden = graph::VertexMask::of_busy(busy);
  options.trace = request.trace;

  // Algorithm 1: sensitive jobs maximize Predicted Effective Bandwidth;
  // insensitive jobs maximize Preserved Bandwidth for future sensitive
  // arrivals.
  const auto scorer = [&](const match::Match& m) {
    if (request.bandwidth_sensitive) {
      if (config_.score_sensitive_with_microbench) {
        return interconnect::measured_effective_bandwidth(*request.pattern,
                                                          hardware, m);
      }
      return config_.theta.empty()
                 ? score::predict_effective_bandwidth(*request.pattern,
                                                      hardware, m)
                 : score::predict_effective_bandwidth(*request.pattern,
                                                      hardware, m,
                                                      config_.theta);
    }
    // Mask overload: the busy mask is already in options.forbidden.
    return score::preserved_bandwidth(hardware, m, options.forbidden);
  };

  const auto best = best_cached_match(cache(), *request.pattern, hardware,
                                      options, scorer, request.cache_probe);
  if (!best) return std::nullopt;
  return score_result(hardware, busy, request, *best, config_);
}

}  // namespace mapa::policy
