#pragma once
// MAPA Preserve policy (paper Algorithm 1): for bandwidth-sensitive jobs,
// pick the match with the highest Predicted Effective Bandwidth (Eq. 2);
// for insensitive jobs, pick the match leaving the highest Preserved
// Bandwidth (Eq. 3), keeping fast links available for future sensitive
// arrivals.

#include "policy/policy.hpp"

namespace mapa::policy {

class PreservePolicy final : public Policy {
 public:
  explicit PreservePolicy(PolicyConfig config = {})
      : config_(std::move(config)) {}

  std::string name() const override { return "preserve"; }

  std::optional<AllocationResult> allocate(
      const graph::Graph& hardware, const std::vector<bool>& busy,
      const AllocationRequest& request) override;

 private:
  PolicyConfig config_;
};

}  // namespace mapa::policy
