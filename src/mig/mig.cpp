#include "mig/mig.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace mapa::mig {

namespace {

using graph::VertexId;

constexpr int kMaxInstances = 7;  // Nvidia MIG hardware limit

}  // namespace

std::vector<VertexId> MigExpansion::instances_of(VertexId physical) const {
  std::vector<VertexId> result;
  for (VertexId v = 0; v < physical_of.size(); ++v) {
    if (physical_of[v] == physical) result.push_back(v);
  }
  return result;
}

std::vector<VertexId> MigExpansion::physical_footprint(
    std::span<const VertexId> virtual_vertices) const {
  std::set<VertexId> footprint;
  for (const VertexId v : virtual_vertices) {
    if (v >= physical_of.size()) {
      throw std::out_of_range("MigExpansion::physical_footprint");
    }
    footprint.insert(physical_of[v]);
  }
  return {footprint.begin(), footprint.end()};
}

MigExpansion expand_mig(const graph::Graph& physical,
                        std::span<const int> instances_per_gpu,
                        const MigOptions& options) {
  if (instances_per_gpu.size() != physical.num_vertices()) {
    throw std::invalid_argument("expand_mig: instance count size mismatch");
  }
  std::size_t total = 0;
  for (const int count : instances_per_gpu) {
    if (count < 1 || count > kMaxInstances) {
      throw std::invalid_argument(
          "expand_mig: instances per GPU must be in [1, 7]");
    }
    total += static_cast<std::size_t>(count);
  }

  MigExpansion expansion;
  expansion.virtual_graph =
      graph::Graph(total, physical.name().empty()
                              ? "mig"
                              : physical.name() + "-mig");
  expansion.physical_of.reserve(total);
  expansion.instance_of.reserve(total);

  // first_virtual[p] = id of physical GPU p's first instance.
  std::vector<VertexId> first_virtual(physical.num_vertices());
  VertexId next = 0;
  for (VertexId p = 0; p < physical.num_vertices(); ++p) {
    first_virtual[p] = next;
    for (int i = 0; i < instances_per_gpu[p]; ++i) {
      expansion.virtual_graph.set_socket(next, physical.socket(p));
      expansion.physical_of.push_back(p);
      expansion.instance_of.push_back(static_cast<std::uint32_t>(i));
      ++next;
    }
  }

  // On-die fabric between co-located instances.
  for (VertexId p = 0; p < physical.num_vertices(); ++p) {
    const int count = instances_per_gpu[p];
    for (int i = 0; i < count; ++i) {
      for (int j = i + 1; j < count; ++j) {
        expansion.virtual_graph.add_edge(
            first_virtual[p] + static_cast<VertexId>(i),
            first_virtual[p] + static_cast<VertexId>(j),
            interconnect::LinkType::kNvSwitch,
            options.intra_gpu_bandwidth_gbps);
      }
    }
  }

  // Inherited inter-GPU links for every instance pair.
  for (const graph::Edge& e : physical.edges()) {
    const int nu = instances_per_gpu[e.u];
    const int nv = instances_per_gpu[e.v];
    const double bandwidth =
        options.share_inter_gpu_bandwidth
            ? e.bandwidth_gbps / static_cast<double>(nu * nv)
            : e.bandwidth_gbps;
    for (int i = 0; i < nu; ++i) {
      for (int j = 0; j < nv; ++j) {
        expansion.virtual_graph.add_edge(
            first_virtual[e.u] + static_cast<VertexId>(i),
            first_virtual[e.v] + static_cast<VertexId>(j), e.type,
            bandwidth);
      }
    }
  }
  return expansion;
}

MigExpansion expand_mig_uniform(const graph::Graph& physical, int instances,
                                const MigOptions& options) {
  const std::vector<int> counts(physical.num_vertices(), instances);
  return expand_mig(physical, counts, options);
}

}  // namespace mapa::mig
