#pragma once
// Virtualized-accelerator support — the extension the paper sketches in
// §3.2/§3.3: "MAPA can potentially support many-to-one mapping by
// representing virtual GPUs as separate nodes in the hardware graph."
//
// `expand_mig` turns a physical hardware graph into a virtual one where
// each physical GPU contributes one vertex per MIG instance:
//  * instances of the same physical GPU are joined by an on-die fabric
//    edge (far faster than any inter-GPU link);
//  * inter-GPU links are inherited by every instance pair, with the
//    physical link bandwidth either kept at peak or split across the
//    instance pairs that could share it (the interference accounting the
//    paper calls out).
//
// The expanded graph works with the unmodified matcher and policies, so
// multiple jobs can land on the same physical GPU — many-to-one mapping
// with zero changes to the MAPA core.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace mapa::mig {

struct MigOptions {
  /// Bandwidth of the on-die fabric between two instances of the same
  /// physical GPU (GB/s). MIG slices share the full on-chip crossbar and
  /// L2, far above NVLink; 200 keeps same-GPU placement strictly
  /// preferable.
  double intra_gpu_bandwidth_gbps = 200.0;
  /// When true, an inherited inter-GPU edge carries
  /// physical_bw / (instances(u) * instances(v)) — the pessimistic even
  /// split across every instance pair that could contend for the link.
  /// When false the peak is inherited unchanged.
  bool share_inter_gpu_bandwidth = true;
};

/// A virtual hardware graph plus the mapping back to physical devices.
struct MigExpansion {
  graph::Graph virtual_graph;
  /// physical_of[v] = physical GPU id of virtual vertex v.
  std::vector<graph::VertexId> physical_of;
  /// instance_of[v] = slice index within its physical GPU.
  std::vector<std::uint32_t> instance_of;

  /// Virtual vertices hosted by one physical GPU.
  std::vector<graph::VertexId> instances_of(graph::VertexId physical) const;

  /// Physical GPUs touched by an allocation over virtual vertices.
  std::vector<graph::VertexId> physical_footprint(
      std::span<const graph::VertexId> virtual_vertices) const;
};

/// Expand `physical` so GPU v contributes `instances_per_gpu[v]` virtual
/// vertices (each must be in [1, 7] — the MIG hardware limit). Socket
/// labels are inherited. Throws on size mismatch or out-of-range counts.
MigExpansion expand_mig(const graph::Graph& physical,
                        std::span<const int> instances_per_gpu,
                        const MigOptions& options = {});

/// Uniform expansion: every GPU split into `instances` slices.
MigExpansion expand_mig_uniform(const graph::Graph& physical, int instances,
                                const MigOptions& options = {});

}  // namespace mapa::mig
