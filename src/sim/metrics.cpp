#include "sim/metrics.hpp"

#include <stdexcept>

namespace mapa::sim {

double record_value(const JobRecord& record, RecordField field) {
  switch (field) {
    case RecordField::kExecTime:
      return record.exec_s;
    case RecordField::kPredictedEffBw:
      return record.predicted_effbw;
    case RecordField::kMeasuredEffBw:
      return record.measured_effbw;
    case RecordField::kAggregatedBw:
      return record.aggregated_bw;
  }
  throw std::invalid_argument("record_value: unknown field");
}

namespace {

bool keep_record(const JobRecord& r, RecordField field,
                 const std::optional<bool>& sensitive_filter) {
  if (sensitive_filter && r.job.bandwidth_sensitive != *sensitive_filter) {
    return false;
  }
  // Bandwidth fields are undefined for single-GPU jobs.
  if (field != RecordField::kExecTime && r.job.num_gpus < 2) return false;
  return true;
}

}  // namespace

std::map<std::string, util::BoxPlot> per_workload_box_plots(
    const SimResult& result, RecordField field,
    std::optional<bool> sensitive_filter) {
  std::map<std::string, std::vector<double>> samples;
  for (const JobRecord& r : result.records) {
    if (!keep_record(r, field, sensitive_filter)) continue;
    samples[r.job.workload].push_back(record_value(r, field));
  }
  std::map<std::string, util::BoxPlot> plots;
  for (const auto& [name, values] : samples) {
    plots[name] = util::box_plot(values);
  }
  return plots;
}

util::BoxPlot pooled_box_plot(const SimResult& result, RecordField field,
                              std::optional<bool> sensitive_filter) {
  std::vector<double> values;
  for (const JobRecord& r : result.records) {
    if (!keep_record(r, field, sensitive_filter)) continue;
    values.push_back(record_value(r, field));
  }
  if (values.empty()) {
    throw std::invalid_argument("pooled_box_plot: no matching records");
  }
  return util::box_plot(values);
}

SpeedupSummary quantile_speedup_summary(
    const SimResult& baseline, const SimResult& candidate,
    std::optional<bool> sensitive_filter) {
  const auto execs = [&](const SimResult& r) {
    std::vector<double> values;
    for (const JobRecord& rec : r.records) {
      if (sensitive_filter &&
          rec.job.bandwidth_sensitive != *sensitive_filter) {
        continue;
      }
      values.push_back(rec.exec_s);
    }
    return values;
  };
  const std::vector<double> base = execs(baseline);
  const std::vector<double> cand = execs(candidate);
  if (base.empty() || cand.empty()) {
    throw std::invalid_argument(
        "quantile_speedup_summary: no matching records");
  }
  const util::BoxPlot b = util::box_plot(base);
  const util::BoxPlot c = util::box_plot(cand);
  SpeedupSummary summary;
  summary.policy = candidate.policy;
  summary.min = b.min / c.min;
  summary.q25 = b.q25 / c.q25;
  summary.median = b.median / c.median;
  summary.q75 = b.q75 / c.q75;
  summary.max = b.max / c.max;
  const double base_tput = baseline.throughput_jobs_per_hour();
  summary.throughput =
      base_tput > 0.0 ? candidate.throughput_jobs_per_hour() / base_tput : 0.0;
  return summary;
}

SpeedupSummary speedup_summary(const SimResult& baseline,
                               const SimResult& candidate) {
  std::vector<double> speedups;
  speedups.reserve(candidate.records.size());
  for (const JobRecord& r : candidate.records) {
    const JobRecord* base = baseline.find(r.job.id);
    if (base == nullptr) {
      throw std::invalid_argument(
          "speedup_summary: job missing from baseline run");
    }
    if (r.exec_s <= 0.0) continue;  // zero-length jobs carry no signal
    speedups.push_back(base->exec_s / r.exec_s);
  }
  if (speedups.empty()) {
    throw std::invalid_argument("speedup_summary: no comparable jobs");
  }
  const util::BoxPlot bp = util::box_plot(speedups);
  SpeedupSummary summary;
  summary.policy = candidate.policy;
  summary.min = bp.min;
  summary.q25 = bp.q25;
  summary.median = bp.median;
  summary.q75 = bp.q75;
  summary.max = bp.max;
  const double base_tput = baseline.throughput_jobs_per_hour();
  summary.throughput =
      base_tput > 0.0 ? candidate.throughput_jobs_per_hour() / base_tput : 0.0;
  return summary;
}

}  // namespace mapa::sim
