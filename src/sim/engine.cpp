#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <queue>
#include <stdexcept>

#include "policy/match_cache.hpp"

namespace mapa::sim {

namespace {

/// One running job inside the engine.
struct Running {
  double finish_s = 0.0;
  std::uint64_t allocation_id = 0;
  std::size_t record_index = 0;

  bool operator>(const Running& other) const {
    return finish_s > other.finish_s;
  }
};

}  // namespace

double SimResult::throughput_jobs_per_hour() const {
  if (makespan_s <= 0.0) return 0.0;
  return static_cast<double>(records.size()) / makespan_s * 3600.0;
}

const JobRecord* SimResult::find(int job_id) const {
  for (const JobRecord& r : records) {
    if (r.job.id == job_id) return &r;
  }
  return nullptr;
}

Simulator::Simulator(graph::Graph hardware,
                     std::unique_ptr<policy::Policy> policy, SimConfig config)
    : mapa_(std::move(hardware), std::move(policy)), config_(config) {
  if (config_.use_match_cache) {
    cache_ = std::make_shared<policy::MatchCache>();
    mapa_.policy().set_match_cache(cache_);
  }
}

SimResult Simulator::run(const std::vector<workload::Job>& jobs) {
  for (const workload::Job& job : jobs) {
    if (job.num_gpus > mapa_.hardware().num_vertices()) {
      throw std::invalid_argument("Simulator::run: job " +
                                  std::to_string(job.id) +
                                  " requests more GPUs than the machine has");
    }
  }

  // Arrival order: by arrival time, stable by list position (FIFO).
  std::vector<std::size_t> arrival_order(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) arrival_order[i] = i;
  std::stable_sort(arrival_order.begin(), arrival_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs[a].arrival_time_s < jobs[b].arrival_time_s;
                   });

  SimResult result;
  result.policy = mapa_.policy_name();
  result.topology = mapa_.hardware().name();
  result.records.reserve(jobs.size());

  obs::TraceSink* const trace = obs::trace_of(config_.observer);

  std::deque<std::size_t> queue;  // indices into `jobs`
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running;
  std::size_t next_arrival = 0;
  double now = 0.0;

  const auto admit_arrivals = [&](double time) {
    while (next_arrival < arrival_order.size() &&
           jobs[arrival_order[next_arrival]].arrival_time_s <= time) {
      queue.push_back(arrival_order[next_arrival]);
      ++next_arrival;
    }
  };
  admit_arrivals(now);

  while (!queue.empty() || !running.empty() ||
         next_arrival < arrival_order.size()) {
    // Serve the queue: FIFO head first; optionally backfill a later job
    // past a blocked head (SimConfig.backfill).
    bool progressed = true;
    while (progressed && !queue.empty()) {
      progressed = false;

      std::size_t queue_pos = 0;
      std::optional<core::Allocation> allocation;
      double overhead_ms = 0.0;
      const std::size_t scan_limit =
          config_.backfill
              ? std::min(queue.size(), config_.backfill_window + 1)
              : std::size_t{1};
      graph::Graph pattern;
      for (; queue_pos < scan_limit; ++queue_pos) {
        const workload::Job& candidate = jobs[queue[queue_pos]];
        pattern = candidate.application_graph();
        obs::Span span(trace, "sim", "allocate");
        span.arg("job", static_cast<std::int64_t>(candidate.id));
        span.arg("gpus", candidate.num_gpus);
        const auto wall_start = std::chrono::steady_clock::now();
        allocation =
            mapa_.allocate(pattern, candidate.bandwidth_sensitive, trace);
        span.arg("placed", allocation.has_value());
        const auto wall_end = std::chrono::steady_clock::now();
        overhead_ms +=
            std::chrono::duration<double, std::milli>(wall_end - wall_start)
                .count();
        if (allocation) break;
      }
      result.total_scheduling_ms += overhead_ms;
      if (!allocation) break;  // nothing fits: wait for a completion

      const workload::Job& job = jobs[queue[queue_pos]];
      JobRecord record;
      record.job = job;
      record.gpus = allocation->gpus();
      record.queued_s = job.arrival_time_s;
      record.start_s = now;
      record.aggregated_bw = allocation->aggregated_bw();
      record.predicted_effbw = allocation->predicted_effbw();
      record.preserved_bw = allocation->preserved_bw();
      record.scheduling_overhead_ms = overhead_ms;

      match::Match m;
      m.mapping = allocation->gpus();
      record.measured_effbw = interconnect::measured_effective_bandwidth(
          pattern, mapa_.hardware(), m, config_.microbench);

      const workload::ExecModel model(job.profile());
      const double effbw = config_.exec_uses_measured_effbw
                               ? record.measured_effbw
                               : record.predicted_effbw;
      record.exec_s = model.exec_time_s(job.num_gpus, effbw, job.iter_scale);
      record.finish_s = now + record.exec_s;

      running.push(
          Running{record.finish_s, allocation->id(), result.records.size()});
      result.records.push_back(std::move(record));
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(queue_pos));
      progressed = true;
    }

    if (running.empty() && queue.empty() &&
        next_arrival >= arrival_order.size()) {
      break;
    }

    // Advance time to the next event: a completion or an arrival.
    double next_time;
    if (!running.empty() && next_arrival < arrival_order.size()) {
      next_time = std::min(running.top().finish_s,
                           jobs[arrival_order[next_arrival]].arrival_time_s);
    } else if (!running.empty()) {
      next_time = running.top().finish_s;
    } else if (next_arrival < arrival_order.size()) {
      next_time = jobs[arrival_order[next_arrival]].arrival_time_s;
    } else {
      // Queue non-empty but nothing running and no arrivals: the head can
      // never be placed (policy failure on an empty machine).
      throw std::runtime_error(
          "Simulator::run: job " +
          std::to_string(jobs[queue.front()].id) +
          " cannot be placed even on an idle machine");
    }
    now = std::max(now, next_time);

    while (!running.empty() && running.top().finish_s <= now) {
      mapa_.release(running.top().allocation_id);
      running.pop();
    }
    admit_arrivals(now);
  }

  result.makespan_s = now;
  if (cache_ != nullptr) {
    const policy::MatchCacheStats stats = cache_->stats();
    result.match_cache_hits = stats.hits;
    result.match_cache_misses = stats.misses;
  }
  if (config_.observer != nullptr && config_.observer->config().zero_wall_clock) {
    result.total_scheduling_ms = 0.0;
    for (JobRecord& r : result.records) r.scheduling_overhead_ms = 0.0;
  }
  return result;
}

SimResult run_simulation(const graph::Graph& hardware,
                         const std::string& policy_name,
                         const std::vector<workload::Job>& jobs,
                         const policy::PolicyConfig& policy_config,
                         const SimConfig& sim_config) {
  Simulator simulator(hardware, policy::make_policy(policy_name, policy_config),
                      sim_config);
  return simulator.run(jobs);
}

}  // namespace mapa::sim
