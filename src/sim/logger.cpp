#include "sim/logger.hpp"

#include <sstream>

#include "util/csv.hpp"

namespace mapa::sim {

std::string to_log_text(const SimResult& result) {
  std::ostringstream os;
  os << "ID, Allocation, Topology, Effective BW (GBps)\n";
  for (const JobRecord& r : result.records) {
    os << r.job.id << ", (";
    for (std::size_t i = 0; i < r.gpus.size(); ++i) {
      if (i != 0) os << ',';
      os << r.gpus[i];
    }
    os << "), " << graph::to_string(r.job.pattern) << ", "
       << util::format_double(r.predicted_effbw) << '\n';
  }
  return os.str();
}

void write_csv(const SimResult& result, std::ostream& out) {
  util::CsvWriter csv(out);
  csv.header({"job_id", "workload", "num_gpus", "pattern", "bw_sensitive",
              "gpus", "queued_s", "start_s", "finish_s", "exec_s",
              "aggregated_bw", "predicted_effbw", "measured_effbw",
              "preserved_bw", "scheduling_overhead_ms"});
  for (const JobRecord& r : result.records) {
    std::ostringstream gpus;
    for (std::size_t i = 0; i < r.gpus.size(); ++i) {
      if (i != 0) gpus << ' ';
      gpus << r.gpus[i];
    }
    csv.row(std::vector<std::string>{
        std::to_string(r.job.id),
        r.job.workload,
        std::to_string(r.job.num_gpus),
        graph::to_string(r.job.pattern),
        r.job.bandwidth_sensitive ? "true" : "false",
        gpus.str(),
        util::format_double(r.queued_s),
        util::format_double(r.start_s),
        util::format_double(r.finish_s),
        util::format_double(r.exec_s),
        util::format_double(r.aggregated_bw),
        util::format_double(r.predicted_effbw),
        util::format_double(r.measured_effbw),
        util::format_double(r.preserved_bw),
        util::format_double(r.scheduling_overhead_ms),
    });
  }
}

std::string to_csv(const SimResult& result) {
  std::ostringstream os;
  write_csv(result, os);
  return os.str();
}

}  // namespace mapa::sim
