#pragma once
// Run-log serialization (the Fig. 14 "Log File" box): a compact text log
// in the paper's format and a full CSV with every recorded score, which
// the benches dump alongside their tables.

#include <iosfwd>
#include <string>

#include "sim/engine.hpp"

namespace mapa::sim {

/// Paper-style log lines: "ID, Allocation, Topology, Effective BW (GBps)".
std::string to_log_text(const SimResult& result);

/// Full CSV: one row per job with all scores and times.
void write_csv(const SimResult& result, std::ostream& out);
std::string to_csv(const SimResult& result);

}  // namespace mapa::sim
