#pragma once
// The MAPA simulation execution framework (paper Fig. 14): a job file is
// dispatched into a FIFO queue; whenever accelerators are free the head
// job is handed to MAPA for allocation; the engine models hardware
// occupancy over time, releases accelerators on job completion, and logs
// every job's allocation quality and execution time.
//
// The paper's simulator uses effective bandwidth as the execution-time
// proxy (§5.1). Ours additionally converts effective bandwidth into
// execution time through the workload ExecModel, which is what the paper
// does implicitly for its Section 4 numbers by running the real machine.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/mapa.hpp"
#include "graph/graph.hpp"
#include "interconnect/microbench.hpp"
#include "obs/obs.hpp"
#include "policy/policy.hpp"
#include "workload/exec_model.hpp"
#include "workload/job.hpp"

namespace mapa::sim {

struct SimConfig {
  /// Microbenchmark settings for the "measured" effective bandwidth that
  /// drives execution times.
  interconnect::MicrobenchConfig microbench;
  /// When false, execution time is driven by the Eq. 2 *predicted*
  /// bandwidth instead of the measured microbenchmark (the DESIGN.md
  /// predicted-vs-measured ablation).
  bool exec_uses_measured_effbw = true;
  /// Queue reordering (the paper notes MAPA "can employ reordering" while
  /// evaluating plain FIFO). When true and the FIFO head does not fit,
  /// up to `backfill_window` later jobs are tried in order and the first
  /// that fits runs ahead of the blocked head.
  bool backfill = false;
  std::size_t backfill_window = 16;
  /// Install an allocation-state match cache on the policy so repeat fleet
  /// states replay prior enumerations (see policy/match_cache.hpp). Cached
  /// and uncached runs produce identical job records; only the scheduling
  /// wall-clock changes. Note the cache path enumerates and scores
  /// sequentially — turn this off to exercise PolicyConfig::threads.
  bool use_match_cache = true;
  /// Optional observability backends (see obs/obs.hpp). Null (the default)
  /// costs one pointer test per allocation; a configured observer records
  /// "sim"/"allocate" spans plus the match/cache spans underneath them,
  /// and ObsConfig::zero_wall_clock scrubs the wall-clock fields of the
  /// result so two runs can be compared byte-for-byte.
  std::shared_ptr<obs::Observer> observer;
};

/// Everything logged about one completed job (Fig. 14 log file, plus the
/// extra scores the benches need).
struct JobRecord {
  workload::Job job;
  std::vector<graph::VertexId> gpus;   // allocation, pattern-vertex order
  double queued_s = 0.0;               // time entered the queue
  double start_s = 0.0;                // allocation time
  double finish_s = 0.0;
  double exec_s = 0.0;                 // modeled execution time
  double aggregated_bw = 0.0;          // Eq. 1
  double predicted_effbw = 0.0;        // Eq. 2
  double measured_effbw = 0.0;         // synthetic microbenchmark
  double preserved_bw = 0.0;           // Eq. 3 at allocation time
  double scheduling_overhead_ms = 0.0; // wall-clock cost of the decision
};

struct SimResult {
  std::string policy;
  std::string topology;
  std::vector<JobRecord> records;     // in completion order
  double makespan_s = 0.0;
  double total_scheduling_ms = 0.0;
  // Match-cache accounting for the run (zeros when caching is off or the
  // policy does not enumerate).
  std::uint64_t match_cache_hits = 0;
  std::uint64_t match_cache_misses = 0;

  /// Jobs per hour of simulated time (the Table 3 "Tput" basis).
  double throughput_jobs_per_hour() const;

  /// Record for a job id; nullptr when absent.
  const JobRecord* find(int job_id) const;
};

class Simulator {
 public:
  /// Takes ownership of the hardware graph and policy.
  Simulator(graph::Graph hardware, std::unique_ptr<policy::Policy> policy,
            SimConfig config = {});

  /// Run a job list to completion. Jobs are queued in arrival order (ties
  /// by position) and served FIFO with head-of-line blocking, mirroring
  /// the paper's scheduler. Throws if any job requests more accelerators
  /// than the machine has.
  SimResult run(const std::vector<workload::Job>& jobs);

  const graph::Graph& hardware() const { return mapa_.hardware(); }

 private:
  core::Mapa mapa_;
  SimConfig config_;
  std::shared_ptr<policy::MatchCache> cache_;  // null when caching is off
};

/// Convenience: build a simulator for a named policy and run the jobs.
SimResult run_simulation(const graph::Graph& hardware,
                         const std::string& policy_name,
                         const std::vector<workload::Job>& jobs,
                         const policy::PolicyConfig& policy_config = {},
                         const SimConfig& sim_config = {});

}  // namespace mapa::sim
