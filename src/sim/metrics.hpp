#pragma once
// Post-run analysis: the aggregations behind Fig. 13 (per-workload
// execution-time and effective-bandwidth distributions) and Table 3
// (normalized speedup quartiles + throughput vs the baseline policy).

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "util/stats.hpp"

namespace mapa::sim {

/// Per-workload box plots of one record field.
enum class RecordField {
  kExecTime,
  kPredictedEffBw,
  kMeasuredEffBw,
  kAggregatedBw,
};

double record_value(const JobRecord& record, RecordField field);

/// Distribution of `field` per workload name. `sensitive_filter`, when
/// set, keeps only jobs with that sensitivity. Only multi-GPU jobs are
/// included for bandwidth fields (1-GPU jobs have no links).
std::map<std::string, util::BoxPlot> per_workload_box_plots(
    const SimResult& result, RecordField field,
    std::optional<bool> sensitive_filter = std::nullopt);

/// Pooled distribution of `field` across all (optionally filtered) jobs.
util::BoxPlot pooled_box_plot(const SimResult& result, RecordField field,
                              std::optional<bool> sensitive_filter =
                                  std::nullopt);

/// Table 3 row: per-job execution-time speedups of `candidate` relative to
/// `baseline` (matched by job id), summarized at min/quartiles/max, plus
/// the throughput ratio.
struct SpeedupSummary {
  std::string policy;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
  double throughput = 0.0;  // candidate jobs/hour over baseline jobs/hour
};

SpeedupSummary speedup_summary(const SimResult& baseline,
                               const SimResult& candidate);

/// Table 3 as the paper computes it: ratios of the execution-time
/// *distribution* quantiles, baseline over candidate — e.g. MAX is
/// "baseline worst case / candidate worst case" (the paper's "worst case
/// execution time reduced by up to 35%" = MAX 1.352), and the 75th %
/// entry is the paper's "12.4% speedup for 75th percentile of jobs".
/// `sensitive_filter` restricts to one sensitivity class (the paper's
/// headline numbers concern the bandwidth-sensitive jobs).
SpeedupSummary quantile_speedup_summary(
    const SimResult& baseline, const SimResult& candidate,
    std::optional<bool> sensitive_filter = std::nullopt);

}  // namespace mapa::sim
