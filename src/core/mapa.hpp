#pragma once
// The MAPA framework facade (paper Fig. 7): owns the hardware graph and
// its allocation state (§3.6), and runs the full pipeline for each job —
// graph pattern matching -> pattern scoring -> pattern selection policy —
// returning a concrete accelerator allocation.
//
// Typical use (see examples/quickstart.cpp):
//
//   mapa::core::Mapa mapa(mapa::graph::dgx1_v100(),
//                         mapa::policy::make_policy("preserve"));
//   auto ticket = mapa.allocate(mapa::graph::ring(3), /*sensitive=*/true);
//   if (ticket) { ... run the job on ticket->gpus() ... }
//   mapa.release(*ticket);

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/topology_handle.hpp"
#include "policy/policy.hpp"

namespace mapa::core {

/// A granted allocation: which accelerators a job holds plus the scores
/// MAPA computed when granting it.
class Allocation {
 public:
  std::uint64_t id() const { return id_; }

  /// Hardware vertices held, in pattern-vertex order (gpus()[p] is where
  /// pattern vertex p runs).
  const std::vector<graph::VertexId>& gpus() const {
    return result_.match.mapping;
  }

  double aggregated_bw() const { return result_.aggregated_bw; }
  double predicted_effbw() const { return result_.predicted_effbw; }
  double preserved_bw() const { return result_.preserved_bw; }
  const policy::AllocationResult& result() const { return result_; }

 private:
  friend class Mapa;
  Allocation(std::uint64_t id, policy::AllocationResult result)
      : id_(id), result_(std::move(result)) {}

  std::uint64_t id_;
  policy::AllocationResult result_;
};

class Mapa {
 public:
  /// Takes a (possibly shared) hardware topology handle and ownership of
  /// the selection policy. graph::TopologyHandle converts implicitly from
  /// graph::Graph, so single-server callers keep passing graphs by value;
  /// fleet callers pass one shared handle per archetype and every Mapa is
  /// then a busy mask + allocation ledger over shared immutable storage.
  Mapa(graph::TopologyHandle hardware, std::unique_ptr<policy::Policy> policy);

  const graph::Graph& hardware() const { return topology_.graph(); }
  /// The shared archetype handle (e.g. for fingerprint-based grouping).
  const graph::TopologyHandle& topology() const { return topology_; }
  const std::string policy_name() const { return policy_->name(); }

  /// Swap the hardware topology in place, keeping the busy mask, the
  /// unusable mask, and the allocation ledger. This is how the fleet's
  /// fault subsystem degrades a server mid-run: the archetype handle is
  /// replaced by a privately forked one (a GPU isolated, a link bandwidth
  /// cut) and later by the pristine archetype again on full repair.
  /// Throws std::invalid_argument when the vertex counts differ (faults
  /// never renumber accelerators) or the handle is empty.
  void rebind_topology(graph::TopologyHandle hardware);

  /// Mark an accelerator lost to a hardware fault (or recovered from
  /// one). An unusable accelerator reads as busy to policies and probes
  /// (busy() folds it in) and is rejected by commit(), but is NOT part of
  /// any allocation — release() of a job that held the vertex still
  /// works, which is exactly the kill-then-lose order the fleet applies
  /// on a GPU loss that hits a running job. Throws std::out_of_range on
  /// a bad vertex.
  void set_unusable(graph::VertexId v, bool unusable);
  bool unusable(graph::VertexId v) const;
  /// Accelerators currently marked unusable.
  std::size_t num_unusable() const { return num_unusable_; }

  /// The selection policy (e.g. to install a match cache post-construction).
  policy::Policy& policy() { return *policy_; }
  const policy::Policy& policy() const { return *policy_; }

  /// Accelerators unavailable to new allocations: held by a live
  /// allocation OR marked unusable by a fault. This merged view is what
  /// policies and probes consume; it equals the pure allocation mask
  /// whenever no accelerator is unusable (the fault-free case).
  const std::vector<bool>& busy() const { return view_; }
  std::size_t free_accelerators() const;

  /// Run matching + scoring + selection for an application pattern.
  /// Returns std::nullopt when the job cannot be placed right now
  /// (insufficient free accelerators or no structural match). `trace`,
  /// when non-null, receives spans from the match/cache layers for this
  /// decision (see obs/trace.hpp); it never affects the result.
  std::optional<Allocation> allocate(const graph::Graph& pattern,
                                     bool bandwidth_sensitive,
                                     obs::TraceSink* trace = nullptr);

  /// Adopt an externally computed placement — e.g. a fleet dispatcher that
  /// probed this machine's policy directly and now commits the winning
  /// probe without re-running the search. Marks the mapped accelerators
  /// busy and returns the allocation ticket, exactly as if allocate() had
  /// produced `result`. Throws std::logic_error when any mapped vertex is
  /// already busy (the probe is stale).
  Allocation commit(policy::AllocationResult result);

  /// Return an allocation's accelerators to the free pool (§3.6
  /// deallocation). Throws std::invalid_argument for unknown or
  /// already-released allocation ids.
  void release(const Allocation& allocation);
  void release(std::uint64_t allocation_id);

  /// Number of live allocations.
  std::size_t live_allocations() const { return live_.size(); }

 private:
  graph::TopologyHandle topology_;
  std::unique_ptr<policy::Policy> policy_;
  std::vector<bool> busy_;      // held by a live allocation
  std::vector<bool> unusable_;  // lost to a hardware fault
  std::vector<bool> view_;      // busy_ | unusable_ (what busy() returns)
  std::size_t num_unusable_ = 0;
  // id -> vertices held (for release bookkeeping).
  std::vector<std::pair<std::uint64_t, std::vector<graph::VertexId>>> live_;
  std::uint64_t next_id_ = 1;
};

}  // namespace mapa::core
