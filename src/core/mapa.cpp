#include "core/mapa.hpp"

#include <algorithm>
#include <stdexcept>

namespace mapa::core {

Mapa::Mapa(graph::TopologyHandle hardware,
           std::unique_ptr<policy::Policy> policy)
    : topology_(std::move(hardware)), policy_(std::move(policy)) {
  if (policy_ == nullptr) {
    throw std::invalid_argument("Mapa: null policy");
  }
  if (topology_.empty() || topology_.num_vertices() == 0) {
    throw std::invalid_argument("Mapa: empty hardware graph");
  }
  busy_.assign(topology_.num_vertices(), false);
  unusable_.assign(topology_.num_vertices(), false);
  view_.assign(topology_.num_vertices(), false);
}

void Mapa::rebind_topology(graph::TopologyHandle hardware) {
  if (hardware.empty()) {
    throw std::invalid_argument("Mapa::rebind_topology: empty handle");
  }
  if (hardware.num_vertices() != topology_.num_vertices()) {
    throw std::invalid_argument(
        "Mapa::rebind_topology: vertex count changed (faults never renumber "
        "accelerators)");
  }
  topology_ = std::move(hardware);
}

void Mapa::set_unusable(graph::VertexId v, bool unusable) {
  if (v >= unusable_.size()) {
    throw std::out_of_range("Mapa::set_unusable: bad vertex");
  }
  if (unusable_[v] == unusable) return;
  unusable_[v] = unusable;
  num_unusable_ += unusable ? 1 : std::size_t(-1);
  view_[v] = busy_[v] || unusable_[v];
}

bool Mapa::unusable(graph::VertexId v) const {
  if (v >= unusable_.size()) {
    throw std::out_of_range("Mapa::unusable: bad vertex");
  }
  return unusable_[v];
}

std::size_t Mapa::free_accelerators() const {
  return static_cast<std::size_t>(
      std::count(view_.begin(), view_.end(), false));
}

std::optional<Allocation> Mapa::allocate(const graph::Graph& pattern,
                                         bool bandwidth_sensitive,
                                         obs::TraceSink* trace) {
  policy::AllocationRequest request;
  request.pattern = &pattern;
  request.bandwidth_sensitive = bandwidth_sensitive;
  request.trace = trace;

  auto result = policy_->allocate(topology_.graph(), view_, request);
  if (!result) return std::nullopt;
  return commit(std::move(*result));
}

Allocation Mapa::commit(policy::AllocationResult result) {
  // Commit: mark the accelerators busy (§3.6 — remove vertices and their
  // incident edges from the available graph). Unusable vertices read as
  // busy through view_, so a stale probe that maps onto a lost GPU is
  // rejected here too.
  for (const graph::VertexId v : result.match.mapping) {
    if (v >= view_.size() || view_[v]) {
      throw std::logic_error("Mapa::commit: placement maps a busy vertex");
    }
  }
  for (const graph::VertexId v : result.match.mapping) {
    busy_[v] = true;
    view_[v] = true;
  }

  Allocation allocation(next_id_++, std::move(result));
  live_.emplace_back(allocation.id(), allocation.gpus());
  return allocation;
}

void Mapa::release(const Allocation& allocation) { release(allocation.id()); }

void Mapa::release(std::uint64_t allocation_id) {
  const auto it = std::find_if(
      live_.begin(), live_.end(),
      [&](const auto& entry) { return entry.first == allocation_id; });
  if (it == live_.end()) {
    throw std::invalid_argument(
        "Mapa::release: unknown or already-released allocation");
  }
  for (const graph::VertexId v : it->second) {
    busy_[v] = false;
    view_[v] = unusable_[v];
  }
  live_.erase(it);
}

}  // namespace mapa::core
