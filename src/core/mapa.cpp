#include "core/mapa.hpp"

#include <algorithm>
#include <stdexcept>

namespace mapa::core {

Mapa::Mapa(graph::TopologyHandle hardware,
           std::unique_ptr<policy::Policy> policy)
    : topology_(std::move(hardware)), policy_(std::move(policy)) {
  if (policy_ == nullptr) {
    throw std::invalid_argument("Mapa: null policy");
  }
  if (topology_.empty() || topology_.num_vertices() == 0) {
    throw std::invalid_argument("Mapa: empty hardware graph");
  }
  busy_.assign(topology_.num_vertices(), false);
}

std::size_t Mapa::free_accelerators() const {
  return static_cast<std::size_t>(
      std::count(busy_.begin(), busy_.end(), false));
}

std::optional<Allocation> Mapa::allocate(const graph::Graph& pattern,
                                         bool bandwidth_sensitive) {
  policy::AllocationRequest request;
  request.pattern = &pattern;
  request.bandwidth_sensitive = bandwidth_sensitive;

  auto result = policy_->allocate(topology_.graph(), busy_, request);
  if (!result) return std::nullopt;
  return commit(std::move(*result));
}

Allocation Mapa::commit(policy::AllocationResult result) {
  // Commit: mark the accelerators busy (§3.6 — remove vertices and their
  // incident edges from the available graph).
  for (const graph::VertexId v : result.match.mapping) {
    if (v >= busy_.size() || busy_[v]) {
      throw std::logic_error("Mapa::commit: placement maps a busy vertex");
    }
  }
  for (const graph::VertexId v : result.match.mapping) busy_[v] = true;

  Allocation allocation(next_id_++, std::move(result));
  live_.emplace_back(allocation.id(), allocation.gpus());
  return allocation;
}

void Mapa::release(const Allocation& allocation) { release(allocation.id()); }

void Mapa::release(std::uint64_t allocation_id) {
  const auto it = std::find_if(
      live_.begin(), live_.end(),
      [&](const auto& entry) { return entry.first == allocation_id; });
  if (it == live_.end()) {
    throw std::invalid_argument(
        "Mapa::release: unknown or already-released allocation");
  }
  for (const graph::VertexId v : it->second) busy_[v] = false;
  live_.erase(it);
}

}  // namespace mapa::core
