#pragma once
// cluster/ — a discrete-event fleet scheduler layered above the
// single-server MAPA engine (sim/engine.hpp). Where sim::Simulator models one
// multi-GPU server behind a FIFO queue, FleetSimulator owns N server
// instances — each a hardware graph with its own allocation policy and
// allocation-state match cache — behind one fleet-level dispatcher queue.
// For every queue candidate the dispatcher probes each eligible server's
// matcher (dry-run allocate against that server's busy mask) and a
// pluggable ServerSelection (cluster/selection.hpp) picks the winner; the
// probed placement is then committed without re-running the search
// (core::Mapa::commit). Optional drain/restore events take servers out of
// and back into rotation mid-run, so heterogeneous-fleet, imbalance, and
// maintenance scenarios are all expressible. Servers can be any topology
// the matcher handles — single nodes or >64-GPU racks on the wide bitset
// path (rack_fleet_specs below; docs/ARCHITECTURE.md has the dispatch
// table).
//
// Per-server probes are independent (each touches only its own policy,
// cache, and busy mask), so they fan out across a util::ThreadPool when
// ClusterConfig::threads > 1 and merge in fixed server order.
//
// Determinism contract: for a fixed server list, job list, and
// configuration, run() produces identical FleetResult contents — records,
// their order, simulated times, placements, and per-server statistics —
// regardless of ClusterConfig::threads and of match-cache state. The only
// exceptions are the wall-clock fields (FleetResult::total_scheduling_ms
// and JobRecord::scheduling_overhead_ms), which measure real elapsed time.
// ClusterConfig::seed is the single master seed of a fleet run: it derives
// one sub-seed per server (in fleet order, via util::Rng) for stochastic
// policies such as "random", and callers should feed the same seed to
// workload::FleetTraceConfig::seed so trace generation and scheduling are
// reproducible from one number. For the deterministic policies, a
// 1-server fleet under "first-fit" reproduces sim::Simulator's job
// records exactly (tests/cluster enforces this); under "random" the two
// diverge only because the fleet seeds its policy from ClusterConfig::seed
// while the engine uses make_policy's default seed.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/selection.hpp"
#include "core/mapa.hpp"
#include "graph/graph.hpp"
#include "policy/policy.hpp"
#include "sim/engine.hpp"
#include "util/thread_pool.hpp"
#include "workload/job.hpp"

namespace mapa::cluster {

/// One server of the fleet: a topology plus the allocation policy it runs.
struct ServerSpec {
  /// Display name; empty = "<topology>-<index>".
  std::string name;
  graph::Graph topology;
  /// Policy factory name ("baseline", "topo-aware", "greedy", "preserve",
  /// "random"); see policy::make_policy.
  std::string policy = "preserve";
};

/// Scheduled fleet-state change: a server leaves rotation (drain — running
/// jobs finish, no new placements) or re-enters it (restore).
struct ServerEvent {
  enum class Kind { kDrain, kRestore };
  double time_s = 0.0;
  std::size_t server = 0;  // index into the fleet's server list
  Kind kind = Kind::kDrain;
};

struct ClusterConfig {
  /// Per-server engine knobs (microbench, exec model source, backfill,
  /// match cache), applied identically to every server.
  sim::SimConfig sim;
  /// Per-server policy knobs, applied identically to every server. Keep
  /// `policy.threads` at 1: the fleet parallelizes across servers instead
  /// (see `threads`), and nesting both oversubscribes the machine.
  policy::PolicyConfig policy;
  /// Server-selection policy name; see cluster/selection.hpp.
  std::string selection = "first-fit";
  /// Probe fan-out across servers (1 = sequential). Never changes results;
  /// see the determinism contract above.
  std::size_t threads = 1;
  /// Master seed; derives per-server policy sub-seeds in fleet order.
  std::uint64_t seed = 42;
  /// Drain/restore schedule (any order; sorted by time internally).
  std::vector<ServerEvent> events;
};

/// A completed job plus where it ran.
struct FleetRecord {
  sim::JobRecord record;
  std::size_t server = 0;  // index into FleetResult::servers
};

/// Per-server summary of a fleet run.
struct ServerResult {
  std::string name;
  std::string topology;
  std::string policy;
  std::size_t num_gpus = 0;
  std::size_t jobs_placed = 0;
  /// GPU-seconds of modeled busy time accumulated on this server.
  double busy_gpu_seconds = 0.0;
  /// busy_gpu_seconds / (num_gpus * makespan); 0 for an empty run.
  double utilization = 0.0;
  // Match-cache accounting (zeros when caching is off).
  std::uint64_t match_cache_hits = 0;
  std::uint64_t match_cache_misses = 0;
};

struct FleetResult {
  std::string selection;
  std::vector<ServerResult> servers;
  /// Placement order (same convention as sim::SimResult::records).
  std::vector<FleetRecord> records;
  double makespan_s = 0.0;
  /// Wall-clock cost of all dispatch decisions (probes + selection);
  /// excluded from the determinism contract.
  double total_scheduling_ms = 0.0;

  /// Jobs per hour of simulated time across the whole fleet.
  double throughput_jobs_per_hour() const;

  /// Record for a job id; nullptr when absent.
  const FleetRecord* find(int job_id) const;
};

class FleetSimulator {
 public:
  /// Takes ownership of the server topologies; builds one policy (and,
  /// when configured, one match cache) per server. Throws on an empty
  /// fleet, unknown policy/selection names, duplicate server names, or
  /// events naming a server the fleet does not have.
  explicit FleetSimulator(std::vector<ServerSpec> servers,
                          ClusterConfig config = {});

  /// Run a job list to completion: jobs queue in arrival order and are
  /// served FIFO (optionally backfilled past a blocked head, mirroring
  /// sim::Simulator). Throws std::invalid_argument when a job requests more
  /// accelerators than any server has, and std::runtime_error when a
  /// queued job can never be placed (idle fleet, no pending arrivals or
  /// events).
  FleetResult run(const std::vector<workload::Job>& jobs);

  std::size_t num_servers() const { return servers_.size(); }
  const graph::Graph& hardware(std::size_t server) const;

 private:
  struct Server {
    std::string name;
    std::string policy_name;
    core::Mapa mapa;
    std::shared_ptr<policy::MatchCache> cache;  // null when caching is off
    bool draining = false;
  };

  std::vector<ServerProbe> probe(const graph::Graph& pattern,
                                 const workload::Job& job);

  ClusterConfig config_;
  std::vector<Server> servers_;
  std::unique_ptr<ServerSelection> selection_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when threads <= 1
};

/// Convenience: build a fleet over `topologies` (one spec per graph, all
/// running `policy_name`) and run the jobs.
FleetResult run_fleet(std::vector<graph::Graph> topologies,
                      const std::string& policy_name,
                      const std::vector<workload::Job>& jobs,
                      const ClusterConfig& config = {});

/// Wide-topology fleet preset: `racks` servers, each a DGX rack of
/// `nodes_per_rack` 8-GPU nodes (graph::dgx_rack; 16 nodes = a 128-GPU
/// server whose matcher runs on the wide bitset path), all running
/// `policy_name`. Defaults to "topo-aware": the non-enumerating policies
/// are the sensible choice at rack scale, because under the PCIe-fallback
/// convention a rack graph is fully connected and the enumerating
/// policies' match sets grow combinatorially with free GPUs. Pair with
/// workload::rack_trace_config for a job mix that spans node boundaries.
std::vector<ServerSpec> rack_fleet_specs(std::size_t racks,
                                         std::size_t nodes_per_rack,
                                         const std::string& policy_name =
                                             "topo-aware");

}  // namespace mapa::cluster
