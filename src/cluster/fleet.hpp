#pragma once
// cluster/ — a discrete-event fleet scheduler layered above the
// single-server MAPA engine (sim/engine.hpp). Where sim::Simulator models one
// multi-GPU server behind a FIFO queue, FleetSimulator owns N server
// instances — each a mutable busy mask + allocation policy over a shared,
// immutable topology archetype (graph::TopologyHandle) — behind a sharded
// fleet-level dispatcher. Scheduled FaultEvents take servers out of and
// back into rotation mid-run (drain/restore) or damage them outright
// (crash, GPU loss, link degrade — see the failure model below), so
// heterogeneous-fleet, imbalance, maintenance, and chaos scenarios are
// all expressible. Servers can be any
// topology the matcher handles — single nodes or >64-GPU racks
// (rack_fleet_specs / archetype_fleet_specs below; docs/ARCHITECTURE.md
// has the dispatch table).
//
// Sharded dispatch (the 10k-server path). The fleet's servers are split
// into `ClusterConfig::shards` contiguous shards, each with its own
// arrival queue. Dispatch is two-level:
//
//   1. Shard picker (deterministic): when a job is admitted it is routed
//      to the shard with the most free accelerators NET of the GPUs its
//      queue already owes, among shards that have at least one server
//      large enough for the job (ties toward the lowest shard index).
//      Netting out the queued backlog spreads a burst of same-time
//      arrivals across shards instead of piling them all onto the shard
//      that looked freest before any of them was served. Free counts and
//      backlogs are maintained incrementally on commit/release/
//      drain/restore and enqueue/place, so routing is O(shards), not
//      O(servers).
//   2. In-shard probe fan-out: each scheduling round serves the shards in
//      index order, one placement at a time. A served candidate probes
//      only its shard's eligible servers (dry-run allocate against each
//      server's busy mask), the pluggable ServerSelection
//      (cluster/selection.hpp) picks the winner among the shard's probes,
//      and the winning placement is committed without re-running the
//      search (core::Mapa::commit). Probes batch onto util::ThreadPool
//      when ClusterConfig::threads > 1 and merge in fixed server order.
//      A shard whose queue and servers are unchanged since its last
//      failed scan is skipped — the skipped scan would replay the same
//      probes to the same answers, so records are unaffected while
//      steady-state dispatch stops paying a full-fleet sweep per tick.
//
// Probe results are memoized (ClusterConfig::probe_memo): a (server,
// pattern, sensitivity) probe outcome — fit or no-fit — is reused across
// queue candidates, so a backfill scan over k candidates of one pattern
// shape costs one matcher run per server, not k. By default the memo is
// CROSS-TICK (ClusterConfig::cross_tick_memo): entries are keyed by the
// server's allocation-state fingerprint (busy mask + working topology),
// survive commits and releases — a server that returns to a previously
// probed state replays the old answer with no matcher run — and go stale
// by construction when a fault forks the topology fingerprint. With
// cross_tick_memo = false the legacy memo clears on every state change.
// Servers running the stochastic "random" policy are never memoized (a
// replayed probe would skip an RNG draw and change the stream). Either
// mode is record-identical to no memo at all; only the probe/memo-hit
// statistics differ.
//
// If the fleet goes fully idle (nothing running, arriving, or scheduled)
// while some shard queue is stuck, the dispatcher runs a cross-shard
// rescue pass: each stuck shard's servable candidates are probed against
// the whole fleet and re-routed to a shard that fits, falling back to the
// unsharded "cannot be placed" error only when no server in the fleet can
// take them. With shards = 1 (the default) the dispatcher degenerates to
// the single global queue and is record-identical to the pre-sharding
// dispatcher.
//
// Shared topology and caches: ServerSpec carries a graph::TopologyHandle,
// so same-archetype servers (equal adjacency fingerprints) reference one
// immutable graph instead of owning dense per-server copies, and — when
// SimConfig::use_match_cache is on — share one policy/match_cache. The
// cache key already folds the busy-mask fingerprint, so state-specific
// entries stay correct per server while cache hits transfer across
// servers that reach the same allocation state. Draining or restoring a
// server never touches the shared cache: siblings' entries stay valid.
//
// Failure model. Beyond drain/restore, FaultEvents inject hardware
// damage: kServerCrash kills every running job on the victim and
// re-queues them; kGpuLoss removes one vertex (killing only the job
// holding it — losing a free GPU kills nothing); kLinkDegrade scales one
// link's bandwidth by `factor` (factor > 0 never disturbs running jobs;
// factor == 0 cuts the link, and an affected job is re-matched IN PLACE
// when its pattern still embeds in the degraded topology, killed
// otherwise). The first damage forks the server off its archetype onto a
// private TopologyHandle whose graph::topology_fingerprint (adjacency +
// bandwidth bits) differs, so the shared match cache and probe memo go
// stale by construction; the server probes through a private fault cache
// until the last repair restores the archetype fingerprint and it
// re-joins. Killed jobs retry after a deterministic exponential backoff
// (retry_backoff_base_s * retry_backoff_factor^(kills-1), plus seeded
// jitter drawn in kill order from a util::Rng stream derived from
// ClusterConfig::seed); more than max_retries kills dead-letters the job
// (FleetResult::dead_letters) instead of recording it.
// FleetResult::resilience aggregates kills, re-queues, re-matches, dead
// letters, topology forks/rejoins, capacity-degraded ticks, and per-kill
// re-place latencies. When a forked server holds a private cache, its
// hit/miss stats are attributed to that server at re-join or run end;
// the shared archetype pool's stats land on the lowest-indexed resident
// sibling (ServerResult::cache_primary).
//
// Determinism contract: for a fixed server list, job list, and
// configuration — the fault-event schedule included — run() produces
// identical FleetResult contents: records, their order, simulated times,
// placements, retries, dead letters, resilience counters, and per-server
// statistics — regardless of ClusterConfig::threads and of match-cache
// state. The match-cache hit/miss split is included: parallel probes run
// the cache in probe mode (policy::CacheProbeTicket), and the tickets
// are committed sequentially in ascending server order after each probe
// batch, so the hit/miss accounting — like everything else — depends
// only on the server order, never on thread scheduling. The
// backoff-jitter stream is part of the configuration (seeded
// from ClusterConfig::seed, consumed in kill order), so replaying a
// chaos schedule is record-identical from the same seed. One sharding
// caveat is inherent rather than accidental: a retried job is routed to
// a shard at admit time, so a server restored later in a different shard
// can be used by the shards = 1 dispatcher but not the sharded one (no
// mid-run cross-shard migration outside the idle-fleet rescue pass). The
// only exception is the wall-clock fields (FleetResult::
// total_scheduling_ms and JobRecord::scheduling_overhead_ms), which
// measure real elapsed time — and ObsConfig::zero_wall_clock (carried by
// ClusterConfig::observer) zeroes even those, so golden-record suites
// can compare full structs byte for byte.
// ClusterConfig::seed is the single master seed of a fleet run: it derives
// one sub-seed per server (in fleet order, via util::Rng) for stochastic
// policies such as "random", and callers should feed the same seed to
// workload::FleetTraceConfig::seed so trace generation and scheduling are
// reproducible from one number. For the deterministic policies, a
// 1-server fleet under "first-fit" reproduces sim::Simulator's job
// records exactly (tests/cluster enforces this); under "random" the two
// diverge only because the fleet seeds its policy from ClusterConfig::seed
// while the engine uses make_policy's default seed.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/selection.hpp"
#include "core/mapa.hpp"
#include "graph/graph.hpp"
#include "graph/topology_handle.hpp"
#include "obs/obs.hpp"
#include "policy/match_cache.hpp"
#include "policy/policy.hpp"
#include "sim/engine.hpp"
#include "util/thread_pool.hpp"
#include "workload/job.hpp"

namespace mapa::cluster {

/// One server of the fleet: a (possibly shared) topology archetype plus
/// the allocation policy it runs.
struct ServerSpec {
  /// Display name; empty = "<topology>-<index>".
  std::string name;
  /// Topology archetype. Converts implicitly from graph::Graph (a private
  /// archetype); copy one handle across specs to share storage — see
  /// archetype_fleet_specs.
  graph::TopologyHandle topology;
  /// Policy factory name ("baseline", "topo-aware", "greedy", "preserve",
  /// "random"); see policy::make_policy.
  std::string policy = "preserve";
};

/// One archetype of an archetype-weighted fleet (archetype_fleet_specs):
/// every server stamped from it shares the same TopologyHandle (and thus,
/// when caching is on, the same match cache).
struct FleetArchetype {
  /// Server-name prefix ("<name>-<k>", k counting per archetype); empty =
  /// the topology's name.
  std::string name;
  graph::TopologyHandle topology;
  std::string policy = "preserve";
  /// Relative share of the fleet's servers; must be > 0.
  std::size_t weight = 1;
};

/// Scheduled fleet-state change. The graceful pair — kDrain (running jobs
/// finish, no new placements) and kRestore (back into rotation) — models
/// maintenance; the fault kinds model hardware failing mid-run:
///
///   * kServerCrash — the server leaves rotation NOW: every running job
///     on it is killed and re-queued with a retry budget (see
///     ClusterConfig), its busy mask is cleared. kRestore brings the
///     machine back.
///   * kGpuLoss / kGpuRecover — accelerator `u` leaves / re-enters the
///     server's usable set. A loss that hits only free GPUs kills
///     nothing; a loss under a running job kills and re-queues that job
///     (its pattern cannot embed in the shrunken hold). Either way the
///     server forks a private degraded TopologyHandle (the lost GPU's
///     links removed) with a fresh fingerprint.
///   * kLinkDegrade / kLinkRepair — the bandwidth of edge {u, v} on the
///     server's topology is cut to `bandwidth_factor` of nominal
///     (0 = the link is down and the edge disappears). Running jobs whose
///     mapping no longer embeds are re-matched in place within their held
///     GPUs when possible, killed and re-queued otherwise. The server
///     forks a private handle here too — bandwidth enters the topology
///     fingerprint, so even a pure bandwidth cut invalidates shared
///     match-cache and probe-memo state by construction.
///
/// A degraded server re-joins its archetype (pristine shared handle and
/// shared match cache) when its last fault is repaired. Redundant events
/// (crashing a crashed server, repairing a healthy link) are no-ops, so
/// independently generated schedules compose safely.
struct FaultEvent {
  enum class Kind {
    kDrain,
    kRestore,
    kServerCrash,
    kGpuLoss,
    kGpuRecover,
    kLinkDegrade,
    kLinkRepair,
  };
  double time_s = 0.0;
  std::size_t server = 0;  // index into the fleet's server list
  Kind kind = Kind::kDrain;
  /// Affected accelerator (kGpuLoss/kGpuRecover) or first link endpoint
  /// (kLinkDegrade/kLinkRepair); unused for the server-level kinds.
  graph::VertexId u = 0;
  /// Second link endpoint (kLinkDegrade/kLinkRepair only).
  graph::VertexId v = 0;
  /// kLinkDegrade: remaining fraction of the nominal bandwidth, in
  /// [0, 1). 0 means the link is down (the edge is removed entirely).
  double bandwidth_factor = 0.0;
};

/// Pre-fault name, kept for call sites that only drain and restore.
using ServerEvent = FaultEvent;

struct ClusterConfig {
  /// Per-server engine knobs (microbench, exec model source, backfill,
  /// match cache), applied identically to every server.
  sim::SimConfig sim;
  /// Per-server policy knobs, applied identically to every server. Keep
  /// `policy.threads` at 1: the fleet parallelizes across servers instead
  /// (see `threads`), and nesting both oversubscribes the machine — the
  /// constructor throws when both are > 1.
  policy::PolicyConfig policy;
  /// Server-selection policy name; see cluster/selection.hpp.
  std::string selection = "first-fit";
  /// Probe fan-out across a shard's servers (1 = sequential). Never
  /// changes records; see the determinism contract above.
  std::size_t threads = 1;
  /// Dispatcher shards (contiguous server ranges, each with its own
  /// queue). 1 = the single-queue dispatcher; values above the server
  /// count are clamped to one server per shard.
  std::size_t shards = 1;
  /// Probe memoization (see the file comment). Unset = enabled exactly
  /// when shards > 1, so the default single-queue dispatcher stays
  /// bit-identical to the pre-sharding one — including match-cache
  /// accounting, which memoization (correctly) reduces.
  std::optional<bool> probe_memo;
  /// Cross-tick probe-memo survival: memo entries are keyed by the
  /// server's allocation-state fingerprint (busy mask + topology), so a
  /// commit or release no longer wipes the server's memo — entries for
  /// the old state simply stop matching, and a server that RETURNS to a
  /// previously probed state (steady-state churn) replays the old answer
  /// without a matcher run. Staleness is by construction (a fault fork
  /// changes the topology fingerprint), and records are identical either
  /// way. Unset = follow the effective probe_memo setting; set false to
  /// keep the legacy clear-on-commit memo (the bench baseline).
  std::optional<bool> cross_tick_memo;
  /// Bound on cross-tick memo entries retained per server; on overflow
  /// the server's memo is cleared wholesale (deterministic — overflow
  /// depends only on the probe sequence, never on thread timing). Sized
  /// to hold the recurring (pattern, state) working set of a server
  /// under steady-state churn: at 512 the wholesale clears visibly
  /// thrash the warm set (memo hit ~0.95 vs ~0.96 at 1024 in
  /// bench_incremental, worth ~1.5x dispatch cost), while 4096 buys
  /// almost nothing more for 4x the footprint.
  std::size_t memo_entries_per_server = 1024;
  /// Match-cache knobs (delta reuse, capacity, oversized bounds) applied
  /// to every archetype-shared cache and every private fault cache the
  /// fleet creates. Only meaningful when sim.use_match_cache is on.
  policy::MatchCacheConfig cache;
  /// Master seed; derives per-server policy sub-seeds in fleet order and
  /// the retry-backoff jitter stream.
  std::uint64_t seed = 42;
  /// Drain/restore and fault schedule (any order; sorted by time
  /// internally; ties keep list order).
  std::vector<FaultEvent> events;
  /// Retry budget for jobs killed by a fault: a killed job is re-queued
  /// up to `max_retries` times, then lands in FleetResult::dead_letters
  /// instead of looping forever.
  std::uint32_t max_retries = 3;
  /// Deterministic exponential backoff before a killed job re-enters the
  /// queue: delay = backoff_base_s * backoff_factor^attempt *
  /// (1 + backoff_jitter * u), with u drawn in [0, 1) from a util::Rng
  /// stream derived from `seed` — identical schedules replay identically.
  double backoff_base_s = 4.0;
  double backoff_factor = 2.0;
  double backoff_jitter = 0.5;
  /// Optional runtime observability (src/obs/): tracing spans, metric
  /// registry, and telemetry time-series per the Observer's ObsConfig.
  /// Null (the default) costs one branch per instrumentation site and
  /// never perturbs the determinism contract; the observer may be shared
  /// across runs/simulators (all backends are thread-safe).
  std::shared_ptr<obs::Observer> observer;
};

/// A completed job plus where it ran.
struct FleetRecord {
  sim::JobRecord record;
  std::size_t server = 0;  // index into FleetResult::servers
  /// Times this job was killed by a fault and re-placed before this
  /// (surviving) run; 0 for a job the fault schedule never touched.
  std::uint32_t retries = 0;
};

/// A job that exhausted its retry budget (or could no longer be placed
/// anywhere after a fault) and was dropped from the queue.
struct DeadLetter {
  workload::Job job;
  std::uint32_t retries = 0;  // kills it absorbed before being dropped
  double time_s = 0.0;        // simulated time it was dead-lettered
};

/// Fleet-level resilience accounting for one run (all deterministic
/// under the fleet determinism contract).
struct ResilienceStats {
  /// Running jobs killed by a crash, GPU loss, or link cut (a job killed
  /// twice counts twice).
  std::uint64_t jobs_killed = 0;
  /// Kills that re-entered the queue with backoff (killed minus
  /// dead-lettered-at-kill).
  std::uint64_t jobs_requeued = 0;
  /// Running jobs whose mapping broke but whose pattern still embedded in
  /// the degraded topology within their held GPUs: re-mapped in place,
  /// never killed.
  std::uint64_t jobs_rematched = 0;
  /// Jobs dropped into FleetResult::dead_letters.
  std::uint64_t jobs_dead_lettered = 0;
  /// Scheduling rounds during which at least one server was crashed or
  /// running on a degraded (forked) topology.
  std::uint64_t capacity_degraded_ticks = 0;
  /// Private-handle forks taken and archetype re-joins completed.
  std::uint64_t topology_forks = 0;
  std::uint64_t archetype_rejoins = 0;
  /// Simulated seconds from each kill to the job's next successful
  /// placement, in re-placement order (feed util::box_plot / quantile for
  /// p50/p99). One entry per successful re-placement.
  std::vector<double> replace_latency_s;
};

/// Per-server summary of a fleet run.
struct ServerResult {
  std::string name;
  std::string topology;
  std::string policy;
  std::size_t num_gpus = 0;
  std::size_t shard = 0;  // dispatcher shard this server belongs to
  std::size_t jobs_placed = 0;
  /// GPU-seconds of modeled busy time accumulated on this server.
  double busy_gpu_seconds = 0.0;
  /// busy_gpu_seconds / (num_gpus * makespan); 0 for an empty run.
  double utilization = 0.0;
  /// Dispatcher probes answered by this server's policy (matcher runs),
  /// and probes served from the per-tick memo without a matcher run.
  /// Both are deterministic across thread counts.
  std::uint64_t probes = 0;
  std::uint64_t probe_memo_hits = 0;
  // Match-cache accounting (zeros when caching is off). When servers
  // share an archetype cache, the shared per-run delta is attributed to
  // the archetype's lowest-indexed server (cache_primary below) and the
  // siblings report zero, so pooled fleet totals never double-count.
  std::uint64_t match_cache_hits = 0;
  std::uint64_t match_cache_misses = 0;
  /// Exact-fingerprint misses served by filtering a cached superset-state
  /// entry instead of running the matcher (MatchCacheConfig::enable_delta).
  std::uint64_t match_cache_delta_hits = 0;
  /// True when this server reports its (possibly shared) cache's stats.
  bool cache_primary = false;
};

struct FleetResult {
  std::string selection;
  std::size_t shards = 1;
  std::vector<ServerResult> servers;
  /// Placement order (same convention as sim::SimResult::records). Only
  /// surviving placements appear: a job killed by a fault and re-placed
  /// later is recorded once, at its final placement.
  std::vector<FleetRecord> records;
  /// Jobs dropped after exhausting ClusterConfig::max_retries (or left
  /// unplaceable by permanent faults), in drop order.
  std::vector<DeadLetter> dead_letters;
  ResilienceStats resilience;
  double makespan_s = 0.0;
  /// Wall-clock cost of all dispatch decisions (probes + selection);
  /// excluded from the determinism contract.
  double total_scheduling_ms = 0.0;

  /// Jobs per hour of simulated time across the whole fleet.
  double throughput_jobs_per_hour() const;

  /// Record for a job id; nullptr when absent.
  const FleetRecord* find(int job_id) const;
};

class FleetSimulator {
 public:
  /// Takes the server specs (topology handles are shared, not copied) and
  /// builds one policy per server plus, when configured, one match cache
  /// per topology archetype. Throws on an empty fleet, unknown
  /// policy/selection names, duplicate server names, zero shards, events
  /// naming a server the fleet does not have, or fleet-level and
  /// policy-level parallelism both requested.
  explicit FleetSimulator(std::vector<ServerSpec> servers,
                          ClusterConfig config = {});
  ~FleetSimulator();

  /// Run a job list to completion: jobs queue in arrival order, are routed
  /// to a shard on admission, and are served FIFO per shard (optionally
  /// backfilled past a blocked head, mirroring sim::Simulator). Throws
  /// std::invalid_argument when a job requests more accelerators than any
  /// server has, and std::runtime_error when a queued job can never be
  /// placed (idle fleet, no pending arrivals or events, and no server in
  /// any shard fits it). Implemented on the tick-driven API below —
  /// start(), submit() every job, step() to idle, finish() — so the batch
  /// and daemon paths execute the same dispatch loop instruction for
  /// instruction.
  FleetResult run(const std::vector<workload::Job>& jobs);

  // ---- Tick-driven API (what the svc/ daemon drives) -------------------
  //
  // A "session" is start() .. finish(). Between the two, submit() feeds
  // jobs incrementally (a job whose arrival time is already in the past is
  // admitted on the next tick), step() advances the dispatch loop by one
  // tick, and the daemon-facing extras — release(), inject_fault(),
  // take_unplaceable() — mutate the live run. Submitting every job before
  // the first step() reproduces run()'s batch schedule exactly: pending
  // arrivals are ordered by (arrival time, submission order), which is
  // run()'s stable sort.

  struct StepOptions {
    /// Force the fault bookkeeping (live-job lists, retry counters) on
    /// even when the event schedule is fault-free. Record-neutral — the
    /// batch path leaves it off purely as a fast path — and required by
    /// release() and mid-run inject_fault() of real fault kinds.
    bool arm_faults = false;
    /// When a queued job can never be placed (the condition run() turns
    /// into std::runtime_error), pop it into the take_unplaceable() outbox
    /// and keep going instead of throwing — a long-lived daemon answers
    /// with a typed error rather than dying.
    bool collect_unplaceable = false;
    /// Reserve hint for the expected total job count (0 = unknown).
    std::size_t expected_jobs = 0;
  };

  /// Begin a session: resets per-run server state (rotation flags, fault
  /// forks) exactly like the top of run() and applies any time-0 events.
  /// Throws std::logic_error when a session is already active.
  void start(StepOptions options);
  void start() { start(StepOptions{}); }

  /// Queue a job for admission at its arrival time (in the past = next
  /// tick). Returns the job's index within this session. Throws
  /// std::logic_error outside a session and std::invalid_argument when the
  /// job is larger than every server.
  std::size_t submit(workload::Job job);

  /// One dispatch tick: serve the shards, then advance simulated time to
  /// the next completion/arrival/event/retry. Returns false when the
  /// session is fully idle (nothing queued, running, pending, or backed
  /// off) — submitting more work makes step() live again.
  bool step();

  /// True when a session is active (start() called, finish() not yet).
  bool active() const { return state_ != nullptr; }
  /// True when an active session has nothing left to do.
  bool idle() const;
  /// Simulated time of the active session.
  double sim_now() const;
  /// Dispatch ticks executed so far in the active session.
  std::uint64_t ticks() const;

  /// Jobs submitted so far in this session (indexable by submit()'s
  /// return value).
  const std::vector<workload::Job>& submitted_jobs() const;
  /// The session's result so far: records in placement order (killed
  /// placements are only compacted away at finish()).
  const FleetResult& partial_result() const;

  /// Job indices that could not be placed anywhere (only populated with
  /// StepOptions::collect_unplaceable); drains the outbox.
  std::vector<std::size_t> take_unplaceable();

  enum class ReleaseOutcome { kNotFound, kQueued, kRunning };
  /// Release a job by id mid-session: a queued (or pending/backed-off)
  /// job is dropped; a running job's allocation is freed NOW and its
  /// record truncated to the elapsed execution time. Requires
  /// StepOptions::arm_faults (the live-job index a release needs is the
  /// fault machinery's); throws std::logic_error otherwise.
  ReleaseOutcome release(int job_id);

  /// Inject a fault event into the active session at
  /// max(event.time_s, sim_now()). Validates like the constructor; real
  /// fault kinds (beyond drain/restore) additionally require
  /// StepOptions::arm_faults.
  void inject_fault(FaultEvent event);

  /// End the session: compacts killed records, finalizes per-server stats
  /// and telemetry, and returns the result (the session is over; start()
  /// begins a new one). Throws std::logic_error outside a session.
  FleetResult finish();

  std::size_t num_servers() const { return servers_.size(); }
  std::size_t num_shards() const { return shards_.size(); }
  /// Dispatcher shard of a server; throws std::out_of_range on bad index.
  std::size_t shard_of(std::size_t server) const;
  const graph::Graph& hardware(std::size_t server) const;

 private:
  struct Server {
    std::string name;
    std::string policy_name;
    core::Mapa mapa;
    std::shared_ptr<policy::MatchCache> cache;  // null when caching is off
    bool cache_primary = false;  // reports the (shared) cache's stats
    bool memoizable = true;      // false for stochastic policies
    std::size_t shard = 0;
    bool draining = false;  // graceful drain (kDrain)
    bool crashed = false;   // hard down (kServerCrash) until kRestore

    // Fault state. While any of it is non-empty the server runs on a
    // privately forked TopologyHandle (degraded()) and a private match
    // cache; on the last repair it re-joins `archetype` and re-attaches
    // the shared `cache`.
    graph::TopologyHandle archetype;  // the pristine shared handle
    std::vector<graph::VertexId> lost_gpus;  // sorted
    /// Degraded links as ((min, max) endpoint, remaining fraction);
    /// sorted by endpoint pair. Factor 0 = link down.
    std::vector<std::pair<std::pair<graph::VertexId, graph::VertexId>,
                          double>>
        degraded_links;
    /// Private cache while degraded (null when caching is off); fresh on
    /// first fork, invalidates itself via the fork's fingerprint on every
    /// further topology change.
    std::shared_ptr<policy::MatchCache> fault_cache;

    bool out_of_rotation() const { return draining || crashed; }
    bool degraded() const {
      return !lost_gpus.empty() || !degraded_links.empty();
    }
  };

  /// Contiguous server range with its own dispatch queue (queue state
  /// lives in run()).
  struct Shard {
    std::vector<std::size_t> servers;  // ascending fleet indices
    std::size_t max_gpus = 0;          // largest member server
  };

  /// Probe outcome memo for one server: key = pattern fingerprint mixed
  /// with the sensitivity flag — and, in cross-tick mode, with the
  /// server's allocation-state fingerprint — value = the policy's answer
  /// (including "does not fit" as nullopt).
  using ProbeMemo =
      std::unordered_map<std::uint64_t,
                         std::optional<policy::AllocationResult>>;

  /// All mutable state of one start()..finish() session — the former
  /// locals of the monolithic run() loop. Defined in fleet.cpp.
  struct RunState;

  std::vector<ServerProbe> probe_servers(
      const std::vector<std::size_t>& candidates, const graph::Graph& pattern,
      std::uint64_t pattern_key, const workload::Job& job, RunState& rs);

  /// Constructor-grade validation of one fault event (server index, GPU /
  /// link endpoints, bandwidth factor); throws std::invalid_argument.
  void validate_event(const FaultEvent& event) const;

  ClusterConfig config_;
  std::vector<Server> servers_;
  std::vector<Shard> shards_;
  bool memo_enabled_ = false;
  /// Memo entries survive commits/releases, keyed by state fingerprint
  /// (ClusterConfig::cross_tick_memo).
  bool cross_tick_ = false;
  /// True when the event list contains any fault kind beyond
  /// drain/restore; gates the kill/re-queue bookkeeping in run() so a
  /// fault-free run pays (near) nothing for the fault subsystem.
  bool faults_armed_ = false;
  std::unique_ptr<ServerSelection> selection_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when threads <= 1
  std::unique_ptr<RunState> state_;         // null outside a session
};

/// Convenience: build a fleet over `topologies` (one spec per graph, all
/// running `policy_name`) and run the jobs.
FleetResult run_fleet(std::vector<graph::Graph> topologies,
                      const std::string& policy_name,
                      const std::vector<workload::Job>& jobs,
                      const ClusterConfig& config = {});

/// Archetype-weighted fleet builder: `servers` specs drawn from
/// `archetypes` by smooth weighted round-robin (deterministic; ties
/// toward the earlier archetype), so a 3:1 weighting of two archetypes
/// interleaves them 3:1 across the fleet — and thus across contiguous
/// dispatcher shards. All servers stamped from one archetype share its
/// TopologyHandle (one graph allocation for the whole fleet) and, when
/// caching is on, one match cache. Throws on zero servers, no archetypes,
/// a zero weight, or an empty archetype topology.
std::vector<ServerSpec> archetype_fleet_specs(
    std::size_t servers, const std::vector<FleetArchetype>& archetypes);

/// Wide-topology fleet preset: `racks` servers, each a DGX rack of
/// `nodes_per_rack` 8-GPU nodes (graph::dgx_rack; 16 nodes = a 128-GPU
/// server whose matcher runs on the wide bitset path), all sharing ONE
/// rack archetype (built once) and running `policy_name`. Defaults to
/// "topo-aware": the non-enumerating policies are the sensible choice at
/// rack scale, because under the PCIe-fallback convention a rack graph is
/// fully connected and the enumerating policies' match sets grow
/// combinatorially with free GPUs. Pair with workload::rack_trace_config
/// for a job mix that spans node boundaries.
std::vector<ServerSpec> rack_fleet_specs(std::size_t racks,
                                         std::size_t nodes_per_rack,
                                         const std::string& policy_name =
                                             "topo-aware");

}  // namespace mapa::cluster
