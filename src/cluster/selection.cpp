#include "cluster/selection.hpp"

#include <stdexcept>

namespace mapa::cluster {

double ServerProbe::score() const {
  if (!placement) return 0.0;
  return bandwidth_sensitive ? placement->predicted_effbw
                             : placement->preserved_bw;
}

namespace {

/// All six built-in selections share one comparison skeleton: scan the
/// fitting probes in server order and keep the current winner unless the
/// challenger is strictly better, so every tie resolves to the lowest
/// server index by construction.
class StandardSelection final : public ServerSelection {
 public:
  enum class Mode {
    kFirstFit,
    kLeastLoaded,
    kPack,
    kBestScore,
    kBestScorePack,
    kBestScoreSpread,
  };

  StandardSelection(std::string name, Mode mode)
      : name_(std::move(name)), mode_(mode) {}

  std::string name() const override { return name_; }

  bool needs_all_probes() const override {
    return mode_ != Mode::kFirstFit;
  }

  std::optional<std::size_t> select(
      const std::vector<ServerProbe>& probes) const override {
    std::optional<std::size_t> winner;
    for (std::size_t i = 0; i < probes.size(); ++i) {
      if (!probes[i].fits()) continue;
      if (!winner) {
        winner = i;
        if (mode_ == Mode::kFirstFit) break;
        continue;
      }
      if (beats(probes[i], probes[*winner])) winner = i;
    }
    return winner;
  }

 private:
  bool beats(const ServerProbe& challenger, const ServerProbe& incumbent) const {
    switch (mode_) {
      case Mode::kFirstFit:
        return false;
      case Mode::kLeastLoaded:
        return challenger.free_fraction() > incumbent.free_fraction();
      case Mode::kPack:
        return challenger.free_fraction() < incumbent.free_fraction();
      case Mode::kBestScore:
        return challenger.score() > incumbent.score();
      case Mode::kBestScorePack:
        if (challenger.score() != incumbent.score()) {
          return challenger.score() > incumbent.score();
        }
        return challenger.free_fraction() < incumbent.free_fraction();
      case Mode::kBestScoreSpread:
        if (challenger.score() != incumbent.score()) {
          return challenger.score() > incumbent.score();
        }
        return challenger.free_fraction() > incumbent.free_fraction();
    }
    return false;  // unreachable
  }

  std::string name_;
  Mode mode_;
};

}  // namespace

std::unique_ptr<ServerSelection> make_selection(const std::string& name) {
  using Mode = StandardSelection::Mode;
  if (name == "first-fit") {
    return std::make_unique<StandardSelection>(name, Mode::kFirstFit);
  }
  if (name == "least-loaded") {
    return std::make_unique<StandardSelection>(name, Mode::kLeastLoaded);
  }
  if (name == "pack") {
    return std::make_unique<StandardSelection>(name, Mode::kPack);
  }
  if (name == "best-score") {
    return std::make_unique<StandardSelection>(name, Mode::kBestScore);
  }
  if (name == "best-score-pack") {
    return std::make_unique<StandardSelection>(name, Mode::kBestScorePack);
  }
  if (name == "best-score-spread") {
    return std::make_unique<StandardSelection>(name, Mode::kBestScoreSpread);
  }
  throw std::invalid_argument("make_selection: unknown selection '" + name +
                              "'");
}

const std::vector<std::string>& selection_names() {
  static const std::vector<std::string> names = {
      "first-fit",  "least-loaded",    "pack",
      "best-score", "best-score-pack", "best-score-spread"};
  return names;
}

}  // namespace mapa::cluster
