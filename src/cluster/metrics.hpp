#pragma once
// Fleet-level post-run analysis, mirroring sim/metrics for FleetResult:
// queue-wait distributions, per-server record-field box plots, the
// cross-server allocation-quality spread, and pooled cache hit rates.
// Everything is computed from the FleetResult alone — the immutable log
// the dispatcher's probe-then-commit loop (fleet.hpp; winners adopted
// via core::Mapa::commit) leaves behind — so benches and examples can
// aggregate without re-running the simulation, and identical results
// aggregate to identical metrics under the fleet determinism contract.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/fleet.hpp"
#include "sim/metrics.hpp"
#include "util/stats.hpp"

namespace mapa::cluster {

/// Queue-wait (start - arrival) distribution across the whole fleet.
util::BoxPlot queue_wait_box_plot(const FleetResult& result);

/// Distribution of `field` per server name. Bandwidth fields keep only
/// multi-GPU jobs (1-GPU jobs have no links), matching sim/metrics;
/// servers that placed no qualifying job are omitted.
std::map<std::string, util::BoxPlot> per_server_box_plots(
    const FleetResult& result, sim::RecordField field);

/// Per-server utilization in fleet order (copied from ServerResult).
std::vector<double> per_server_utilization(const FleetResult& result);

/// Cross-server allocation-quality spread: max - min of the per-server
/// mean predicted effective bandwidth over multi-GPU jobs. 0 when fewer
/// than two servers placed a multi-GPU job. A large spread means the
/// dispatcher is feeding some servers systematically worse placements.
double allocation_quality_spread(const FleetResult& result);

/// Pooled match-cache hit rate over every server's cache; 0 when no
/// lookups happened (caching off, or non-enumerating policies).
double fleet_cache_hit_rate(const FleetResult& result);

/// Kill-to-re-placement latency distribution (simulated seconds,
/// including backoff) over ResilienceStats::replace_latency_s; the
/// all-zero box plot when no job was ever re-placed.
util::BoxPlot replace_latency_box_plot(const FleetResult& result);

/// Fraction of jobs the fault schedule dropped: dead-lettered /
/// (records + dead-lettered). 0 for an empty or fault-free run.
double dead_letter_rate(const FleetResult& result);

}  // namespace mapa::cluster
