#include "cluster/metrics.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace mapa::cluster {

util::BoxPlot queue_wait_box_plot(const FleetResult& result) {
  std::vector<double> waits;
  waits.reserve(result.records.size());
  for (const FleetRecord& r : result.records) {
    waits.push_back(r.record.start_s - r.record.queued_s);
  }
  if (waits.empty()) return {};
  return util::box_plot(waits);
}

std::map<std::string, util::BoxPlot> per_server_box_plots(
    const FleetResult& result, sim::RecordField field) {
  std::map<std::string, std::vector<double>> samples;
  for (const FleetRecord& r : result.records) {
    // Bandwidth fields are undefined for single-GPU jobs (no links).
    if (field != sim::RecordField::kExecTime && r.record.job.num_gpus < 2) {
      continue;
    }
    samples[result.servers[r.server].name].push_back(
        sim::record_value(r.record, field));
  }
  std::map<std::string, util::BoxPlot> plots;
  for (const auto& [name, values] : samples) {
    plots[name] = util::box_plot(values);
  }
  return plots;
}

std::vector<double> per_server_utilization(const FleetResult& result) {
  std::vector<double> utilization;
  utilization.reserve(result.servers.size());
  for (const ServerResult& s : result.servers) {
    utilization.push_back(s.utilization);
  }
  return utilization;
}

double allocation_quality_spread(const FleetResult& result) {
  std::vector<double> sums(result.servers.size(), 0.0);
  std::vector<std::size_t> counts(result.servers.size(), 0);
  for (const FleetRecord& r : result.records) {
    if (r.record.job.num_gpus < 2) continue;
    sums[r.server] += r.record.predicted_effbw;
    ++counts[r.server];
  }
  bool any = false;
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t s = 0; s < sums.size(); ++s) {
    if (counts[s] == 0) continue;
    const double mean = sums[s] / static_cast<double>(counts[s]);
    if (!any) {
      lo = hi = mean;
      any = true;
    } else {
      lo = std::min(lo, mean);
      hi = std::max(hi, mean);
    }
  }
  return any ? hi - lo : 0.0;
}

double fleet_cache_hit_rate(const FleetResult& result) {
  std::uint64_t hits = 0;
  std::uint64_t lookups = 0;
  for (const ServerResult& s : result.servers) {
    hits += s.match_cache_hits;
    lookups += s.match_cache_hits + s.match_cache_misses;
  }
  if (lookups == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(lookups);
}

util::BoxPlot replace_latency_box_plot(const FleetResult& result) {
  if (result.resilience.replace_latency_s.empty()) return util::BoxPlot{};
  return util::box_plot(result.resilience.replace_latency_s);
}

double dead_letter_rate(const FleetResult& result) {
  const std::size_t total =
      result.records.size() + result.dead_letters.size();
  if (total == 0) return 0.0;
  return static_cast<double>(result.dead_letters.size()) /
         static_cast<double>(total);
}

}  // namespace mapa::cluster
