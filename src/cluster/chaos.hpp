#pragma once
// Seeded fault-schedule generation — the bridge between
// workload::ChaosTraceConfig (the parameters of the fault process) and
// the concrete cluster::FaultEvent list a FleetSimulator consumes. Kept
// in cluster/ because picking a victim GPU or link requires the server
// topologies, which the workload layer deliberately does not know.
//
// The schedule is a pure function of (config, specs): one util::Rng
// stream drives every draw, so the same seed replays the same faults on
// any machine — which is what lets the resilience tests pin byte-exact
// FleetRecords across thread and shard counts "under an identical fault
// schedule", and lets bench_resilience sweep fault rates reproducibly.

#include <vector>

#include "cluster/fleet.hpp"
#include "workload/generator.hpp"

namespace mapa::cluster {

/// Generate a fault/repair schedule over `specs` per `config`:
///
///   * fault instants: Poisson with mean gap `config.mtbf_s`, injected in
///     [0, config.horizon_s);
///   * victim server: uniform over the fleet;
///   * kind: weighted pick among kServerCrash, kGpuLoss, kLinkDegrade
///     (a link fault on an edgeless server falls back to a GPU loss);
///   * repair: every fault schedules its matching kRestore / kGpuRecover
///     / kLinkRepair at +Exp(config.mttr_s) — repairs may land past the
///     horizon, so long outages truncate naturally at run end.
///
/// Faults of one kind may overlap on one server (e.g. a second crash
/// before the first restore); FleetSimulator treats redundant events as
/// no-ops, so independently drawn sub-schedules compose safely. The
/// returned list is sorted by time. Throws std::invalid_argument on an
/// empty fleet, a non-positive MTBF/MTTR, a negative horizon, all kind
/// weights zero or negative, or link_down_chance outside [0, 1].
std::vector<FaultEvent> generate_fault_schedule(
    const workload::ChaosTraceConfig& config,
    const std::vector<ServerSpec>& specs);

}  // namespace mapa::cluster
