#pragma once
// Server-selection policies for the fleet dispatcher (cluster/fleet.hpp).
//
// This is the middle step of the dispatcher's probe-then-commit flow:
// when the fleet queue head is considered, every eligible server (not
// draining, enough free accelerators) is probed — its own MAPA policy
// runs a full match-and-score pass against the server's current busy
// mask without committing anything — a ServerSelection picks the winning
// probe, and only that winner's placement is adopted, via
// core::Mapa::commit, with no re-search. Policies range from
// placement-oblivious (first-fit, least-loaded, pack) to quality-driven
// (best-score: place where the MAPA score of the probed allocation is
// highest, with packing/spreading tie-break variants for consolidating
// or balancing the fleet).
//
// Selections must be deterministic: probes arrive in ascending server
// order and every tie is broken toward the lowest server index, so fleet
// runs are reproducible regardless of how many threads computed the probes.

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "policy/policy.hpp"

namespace mapa::cluster {

/// One server's dry-run answer for the job under consideration.
struct ServerProbe {
  std::size_t server = 0;      // index into the fleet's server list
  std::size_t free_gpus = 0;   // free accelerators at probe time
  std::size_t total_gpus = 0;  // server size
  bool bandwidth_sensitive = false;  // the probed job's sensitivity label
  /// The policy's placement, or nullopt when the job does not fit here.
  std::optional<policy::AllocationResult> placement;

  bool fits() const { return placement.has_value(); }

  /// Free capacity fraction (comparable across heterogeneous servers).
  double free_fraction() const {
    return total_gpus == 0
               ? 0.0
               : static_cast<double>(free_gpus) / static_cast<double>(total_gpus);
  }

  /// The MAPA score of the probed placement, mirroring Algorithm 1's
  /// objective: predicted effective bandwidth for bandwidth-sensitive
  /// jobs, preserved bandwidth otherwise. 0 when the job does not fit.
  double score() const;
};

/// Picks which server a job runs on, given one probe per eligible server.
class ServerSelection {
 public:
  virtual ~ServerSelection() = default;

  virtual std::string name() const = 0;

  /// Index into `probes` of the winner, or nullopt when no probe fits.
  /// `probes` is ordered by ascending server index; implementations must
  /// be deterministic and break ties toward the lowest server index.
  virtual std::optional<std::size_t> select(
      const std::vector<ServerProbe>& probes) const = 0;

  /// False when the winner never depends on probes past the first fitting
  /// one (first-fit): the dispatcher then probes servers sequentially and
  /// stops at the first fit instead of running every server's matcher.
  virtual bool needs_all_probes() const { return true; }
};

/// Factory by name: "first-fit" (lowest server index that fits),
/// "least-loaded" (spread: highest free fraction), "pack" (consolidate:
/// lowest free fraction), "best-score" (highest MAPA score), and the
/// "best-score-pack" / "best-score-spread" variants that break score ties
/// toward the most- / least-loaded server. Throws std::invalid_argument
/// for unknown names.
std::unique_ptr<ServerSelection> make_selection(const std::string& name);

/// All selection-policy names, in the factory's order.
const std::vector<std::string>& selection_names();

}  // namespace mapa::cluster
