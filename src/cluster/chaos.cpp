#include "cluster/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace mapa::cluster {

std::vector<FaultEvent> generate_fault_schedule(
    const workload::ChaosTraceConfig& config,
    const std::vector<ServerSpec>& specs) {
  if (specs.empty()) {
    throw std::invalid_argument("generate_fault_schedule: empty fleet");
  }
  if (!(config.mtbf_s > 0.0) || !(config.mttr_s > 0.0)) {
    throw std::invalid_argument(
        "generate_fault_schedule: MTBF and MTTR must be > 0");
  }
  if (config.horizon_s < 0.0) {
    throw std::invalid_argument(
        "generate_fault_schedule: negative horizon");
  }
  const double crash_w = std::max(0.0, config.server_crash_weight);
  const double gpu_w = std::max(0.0, config.gpu_loss_weight);
  const double link_w = std::max(0.0, config.link_degrade_weight);
  const double total_w = crash_w + gpu_w + link_w;
  if (!(total_w > 0.0)) {
    throw std::invalid_argument(
        "generate_fault_schedule: all fault-kind weights are zero");
  }
  if (config.link_down_chance < 0.0 || config.link_down_chance > 1.0) {
    throw std::invalid_argument(
        "generate_fault_schedule: link_down_chance outside [0, 1]");
  }

  util::Rng rng(config.seed);
  const auto exponential = [&rng](double mean) {
    return -mean * std::log(1.0 - rng.uniform());
  };

  std::vector<FaultEvent> events;
  double t = exponential(config.mtbf_s);
  while (t < config.horizon_s) {
    const std::size_t server = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(specs.size()) - 1));
    const graph::Graph& topology = specs[server].topology.graph();
    const double repair_s = t + exponential(config.mttr_s);

    double pick = rng.uniform() * total_w;
    FaultEvent fault;
    fault.time_s = t;
    fault.server = server;
    FaultEvent repair;
    repair.time_s = repair_s;
    repair.server = server;
    if (pick < crash_w) {
      fault.kind = FaultEvent::Kind::kServerCrash;
      repair.kind = FaultEvent::Kind::kRestore;
    } else if (pick < crash_w + gpu_w ||
               topology.num_edges() == 0) {
      // A link fault on an edgeless (single-GPU) server falls back here.
      fault.kind = FaultEvent::Kind::kGpuLoss;
      repair.kind = FaultEvent::Kind::kGpuRecover;
      fault.u = static_cast<graph::VertexId>(rng.uniform_int(
          0, static_cast<std::int64_t>(topology.num_vertices()) - 1));
      repair.u = fault.u;
    } else {
      fault.kind = FaultEvent::Kind::kLinkDegrade;
      repair.kind = FaultEvent::Kind::kLinkRepair;
      const graph::Edge& edge = topology.edges()[static_cast<std::size_t>(
          rng.uniform_int(
              0, static_cast<std::int64_t>(topology.num_edges()) - 1))];
      fault.u = edge.u;
      fault.v = edge.v;
      fault.bandwidth_factor =
          rng.chance(config.link_down_chance) ? 0.0 : rng.uniform(0.25, 0.75);
      repair.u = edge.u;
      repair.v = edge.v;
    }
    events.push_back(fault);
    events.push_back(repair);
    t += exponential(config.mtbf_s);
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time_s < b.time_s;
                   });
  return events;
}

}  // namespace mapa::cluster
