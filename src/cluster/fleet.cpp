#include "cluster/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "graph/algorithms.hpp"
#include "graph/topology.hpp"
#include "interconnect/microbench.hpp"
#include "match/enumerator.hpp"
#include "policy/match_cache.hpp"
#include "util/rng.hpp"
#include "workload/exec_model.hpp"

namespace mapa::cluster {

namespace {

/// One running job inside the fleet loop. Kept in a min-heap on finish
/// time; a fault kill erases the entry outright (std::erase_if +
/// make_heap — kills are rare), so the heap never holds stale jobs and
/// the makespan never stretches to a killed job's original finish.
struct Running {
  double finish_s = 0.0;
  std::size_t server = 0;
  std::uint64_t allocation_id = 0;
  std::size_t gpus = 0;  // for incremental free-GPU accounting on release

  bool operator>(const Running& other) const {
    return finish_s > other.finish_s;
  }
};

/// Fault-side view of a running job, kept only when the event list arms
/// the fault machinery: everything a kill needs to unwind the placement.
struct LiveJob {
  std::size_t job_index = 0;
  std::size_t num_gpus = 0;  // allocation size; the mapping itself lives
                             // in the job's (still-alive) FleetRecord
  double finish_s = 0.0;
  std::size_t record_index = 0;  // into FleetResult::records
};

/// A killed job waiting out its backoff before re-entering the queue.
/// Min-heap on (ready time, kill sequence) — the sequence breaks ties
/// deterministically.
struct Retry {
  double ready_s = 0.0;
  std::uint64_t seq = 0;
  std::size_t job_index = 0;

  bool operator>(const Retry& other) const {
    if (ready_s != other.ready_s) return ready_s > other.ready_s;
    return seq > other.seq;
  }
};

/// Probe-memo key: the pattern's adjacency fingerprint (shape identity —
/// GPU count and edge structure) mixed with the sensitivity flag, then
/// finalized so near-identical fingerprints spread across buckets. A
/// policy's answer depends on nothing else once the server's busy mask is
/// fixed, and the memo is cleared whenever that mask changes.
std::uint64_t probe_key(const graph::Graph& pattern, bool sensitive) {
  std::uint64_t x = graph::adjacency_fingerprint(pattern) ^
                    (sensitive ? 0x9e3779b97f4a7c15ULL : 0x2545f4914f6cdd1dULL);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

double FleetResult::throughput_jobs_per_hour() const {
  if (makespan_s <= 0.0) return 0.0;
  return static_cast<double>(records.size()) / makespan_s * 3600.0;
}

const FleetRecord* FleetResult::find(int job_id) const {
  for (const FleetRecord& r : records) {
    if (r.record.job.id == job_id) return &r;
  }
  return nullptr;
}

FleetSimulator::FleetSimulator(std::vector<ServerSpec> specs,
                               ClusterConfig config)
    : config_(std::move(config)) {
  if (specs.empty()) {
    throw std::invalid_argument("FleetSimulator: empty fleet");
  }
  if (config_.shards == 0) {
    throw std::invalid_argument("FleetSimulator: zero dispatcher shards");
  }
  if (config_.threads > 1 && config_.policy.threads > 1) {
    throw std::invalid_argument(
        "FleetSimulator: fleet-level (ClusterConfig::threads) and "
        "policy-level (policy.threads) parallelism both requested; keep "
        "policy.threads at 1 and parallelize across servers instead");
  }
  selection_ = make_selection(config_.selection);

  // The master seed derives one policy sub-seed per server, in fleet
  // order, so stochastic policies are reproducible across thread counts.
  util::Rng seed_stream(config_.seed);
  servers_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ServerSpec& spec = specs[i];
    const std::uint64_t policy_seed = seed_stream.next_u64();
    std::string name = spec.name.empty()
                           ? spec.topology.name() + "-" + std::to_string(i)
                           : std::move(spec.name);
    Server server{std::move(name),
                  spec.policy,
                  core::Mapa(std::move(spec.topology),
                             policy::make_policy(spec.policy, config_.policy,
                                                 policy_seed)),
                  /*cache=*/nullptr,
                  /*cache_primary=*/false,
                  // Replaying a memoized probe for a stochastic policy
                  // would skip an RNG draw and shift its stream.
                  /*memoizable=*/spec.policy != "random",
                  /*shard=*/0,
                  /*draining=*/false,
                  /*crashed=*/false,
                  // Pristine shared handle, kept so a degraded server can
                  // re-join its archetype after its last fault is repaired.
                  /*archetype=*/{},
                  /*lost_gpus=*/{},
                  /*degraded_links=*/{},
                  /*fault_cache=*/nullptr};
    server.archetype = server.mapa.topology();
    servers_.push_back(std::move(server));
  }

  // One match cache per topology archetype: servers with the same
  // adjacency fingerprint — the identity MatchCache itself pins hardware
  // on — share one cache, so a fleet stamped from a handful of archetypes
  // holds a handful of caches instead of one per server. The cache key
  // folds the busy-mask fingerprint, so per-state entries stay correct on
  // every sharing server. The lowest-indexed server of each archetype is
  // the one that reports the shared cache's stats.
  if (config_.sim.use_match_cache) {
    std::unordered_map<std::uint64_t, std::shared_ptr<policy::MatchCache>>
        caches;
    for (Server& server : servers_) {
      auto [it, inserted] =
          caches.try_emplace(server.mapa.topology().fingerprint(), nullptr);
      if (inserted) {
        it->second = std::make_shared<policy::MatchCache>();
        server.cache_primary = true;
      }
      server.cache = it->second;
      server.mapa.policy().set_match_cache(server.cache);
    }
  }

  // Contiguous shard partition: shard i owns servers [i*n/S, (i+1)*n/S).
  // Every shard is non-empty because S is clamped to the server count.
  const std::size_t n = servers_.size();
  const std::size_t num_shards = std::min(config_.shards, n);
  shards_.resize(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    const std::size_t begin = i * n / num_shards;
    const std::size_t end = (i + 1) * n / num_shards;
    for (std::size_t s = begin; s < end; ++s) {
      servers_[s].shard = i;
      shards_[i].servers.push_back(s);
      shards_[i].max_gpus = std::max(shards_[i].max_gpus,
                                     servers_[s].mapa.topology().num_vertices());
    }
  }
  memo_enabled_ = config_.probe_memo.value_or(num_shards > 1);

  // Metrics and examples key per-server aggregations by name; duplicates
  // would silently merge two servers' samples.
  std::unordered_set<std::string> names;
  names.reserve(servers_.size());
  for (const Server& server : servers_) {
    if (!names.insert(server.name).second) {
      throw std::invalid_argument("FleetSimulator: duplicate server name '" +
                                  server.name + "'");
    }
  }

  for (const FaultEvent& event : config_.events) {
    if (event.server >= servers_.size()) {
      throw std::invalid_argument(
          "FleetSimulator: event names server " +
          std::to_string(event.server) + " but the fleet has " +
          std::to_string(servers_.size()) + " servers");
    }
    const std::size_t vertices =
        servers_[event.server].mapa.topology().num_vertices();
    switch (event.kind) {
      case FaultEvent::Kind::kGpuLoss:
      case FaultEvent::Kind::kGpuRecover:
        if (event.u >= vertices) {
          throw std::invalid_argument(
              "FleetSimulator: GPU fault names accelerator " +
              std::to_string(event.u) + " but server " +
              std::to_string(event.server) + " has " +
              std::to_string(vertices));
        }
        break;
      case FaultEvent::Kind::kLinkDegrade:
      case FaultEvent::Kind::kLinkRepair:
        if (event.u >= vertices || event.v >= vertices ||
            event.u == event.v) {
          throw std::invalid_argument(
              "FleetSimulator: link fault names a bad endpoint pair on "
              "server " +
              std::to_string(event.server));
        }
        if (event.kind == FaultEvent::Kind::kLinkDegrade &&
            (event.bandwidth_factor < 0.0 || event.bandwidth_factor >= 1.0)) {
          throw std::invalid_argument(
              "FleetSimulator: kLinkDegrade bandwidth_factor must be in "
              "[0, 1)");
        }
        break;
      case FaultEvent::Kind::kDrain:
      case FaultEvent::Kind::kRestore:
      case FaultEvent::Kind::kServerCrash:
        break;
    }
    if (event.kind != FaultEvent::Kind::kDrain &&
        event.kind != FaultEvent::Kind::kRestore) {
      // Any real fault kind arms the kill/re-queue machinery in run();
      // drain/restore-only schedules keep the fault-free fast path.
      faults_armed_ = true;
    }
  }

  if (config_.threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.threads);
  }
}

const graph::Graph& FleetSimulator::hardware(std::size_t server) const {
  if (server >= servers_.size()) {
    throw std::out_of_range("FleetSimulator::hardware: bad server index");
  }
  return servers_[server].mapa.hardware();
}

std::size_t FleetSimulator::shard_of(std::size_t server) const {
  if (server >= servers_.size()) {
    throw std::out_of_range("FleetSimulator::shard_of: bad server index");
  }
  return servers_[server].shard;
}

std::vector<ServerProbe> FleetSimulator::probe_servers(
    const std::vector<std::size_t>& candidates, const graph::Graph& pattern,
    std::uint64_t pattern_key, const workload::Job& job,
    const std::vector<std::size_t>& server_free, std::vector<ProbeMemo>& memo,
    std::vector<std::uint64_t>& probe_count,
    std::vector<std::uint64_t>& memo_hits) {
  std::vector<std::size_t> eligible;
  eligible.reserve(candidates.size());
  for (const std::size_t s : candidates) {
    if (servers_[s].out_of_rotation()) continue;
    if (job.num_gpus > servers_[s].mapa.hardware().num_vertices()) continue;
    eligible.push_back(s);
  }

  // Probes touch only their own server's policy, cache, busy mask, and
  // memo bucket, so they are independent; results land at fixed indices
  // and the selection scans them in server order — thread count cannot
  // change the outcome. Memoized probes replay the policy's last answer
  // for this (pattern, sensitivity) against the server's unchanged busy
  // mask; the memo caches "does not fit" too.
  //
  // Cache accounting runs in probe mode: each probe fills a
  // CacheProbeTicket instead of counting hits/misses in arrival order,
  // and the tickets are committed below in ascending server order — the
  // only place probe-phase lookups mutate cache stats or LRU state — so
  // the hit/miss split is part of the determinism contract at any
  // thread count.
  obs::TraceSink* const trace = obs::trace_of(config_.observer);
  obs::Span fanout_span(trace, "fleet", "probe_fanout");
  fanout_span.arg("eligible", eligible.size());
  fanout_span.arg("job", job.id);
  std::vector<ServerProbe> probes;
  std::vector<policy::CacheProbeTicket> tickets(eligible.size());
  const auto probe_one = [&](std::size_t k) {
    const std::size_t index = eligible[k];
    Server& server = servers_[index];
    ServerProbe p;
    p.server = index;
    p.total_gpus = server.mapa.hardware().num_vertices();
    // The incremental free count run() maintains on commit/release —
    // equal to mapa.free_accelerators() but O(1) instead of an O(V) scan
    // per probe, which dominates probe-all selections at fleet scale.
    p.free_gpus = server_free[index];
    p.bandwidth_sensitive = job.bandwidth_sensitive;
    const bool memoize = memo_enabled_ && server.memoizable;
    bool replayed = false;
    if (memoize) {
      const auto it = memo[index].find(pattern_key);
      if (it != memo[index].end()) {
        p.placement = it->second;
        ++memo_hits[index];
        replayed = true;
      }
    }
    if (!replayed) {
      obs::Span probe_span(trace, "probe", "allocate");
      probe_span.arg("server", index);
      policy::AllocationRequest request;
      request.pattern = &pattern;
      request.bandwidth_sensitive = job.bandwidth_sensitive;
      request.cache_probe = &tickets[k];
      request.trace = trace;
      p.placement = server.mapa.policy().allocate(server.mapa.hardware(),
                                                  server.mapa.busy(), request);
      probe_span.arg("fits", p.placement.has_value());
      ++probe_count[index];
      if (memoize) memo[index].emplace(pattern_key, p.placement);
    }
    probes[k] = std::move(p);
  };
  if (!selection_->needs_all_probes()) {
    // First-fit never looks past the first fitting probe: run the matchers
    // sequentially in server order and stop at the first fit, so dispatch
    // cost stays O(1) probes instead of O(shard size).
    for (std::size_t k = 0; k < eligible.size(); ++k) {
      probes.resize(k + 1);
      probe_one(k);
      if (probes[k].fits()) break;
    }
  } else if (pool_ != nullptr && eligible.size() > 1) {
    probes.resize(eligible.size());
    pool_->parallel_for(eligible.size(), probe_one);
  } else {
    probes.resize(eligible.size());
    for (std::size_t k = 0; k < eligible.size(); ++k) probe_one(k);
  }
  // Sequential commit in ascending server order (eligible is ascending;
  // probes.size() <= eligible.size() when first-fit stopped early).
  // Untouched tickets (memo replays, non-caching policies) are kNone and
  // return without taking the cache lock.
  for (std::size_t k = 0; k < probes.size(); ++k) {
    if (tickets[k].kind() == policy::CacheProbeTicket::Kind::kNone) continue;
    Server& server = servers_[eligible[k]];
    policy::MatchCache* cache = server.fault_cache != nullptr
                                    ? server.fault_cache.get()
                                    : server.cache.get();
    if (cache != nullptr) cache->commit_probe(tickets[k]);
  }
  return probes;
}

FleetResult FleetSimulator::run(const std::vector<workload::Job>& jobs) {
  // Observability handles: all null when no observer is configured (or
  // the corresponding ObsConfig flag is off), making every
  // instrumentation site below a branch on a null pointer.
  obs::TraceSink* const trace = obs::trace_of(config_.observer);
  obs::Registry* const metrics = obs::registry_of(config_.observer);
  obs::TelemetryLog* const telemetry =
      config_.observer != nullptr ? config_.observer->telemetry() : nullptr;
  const std::size_t telemetry_every =
      config_.observer != nullptr
          ? config_.observer->config().telemetry_every_ticks
          : 0;
  struct {
    obs::Counter* ticks = nullptr;
    obs::Counter* placements = nullptr;
    obs::Counter* kills = nullptr;
    obs::Counter* requeues = nullptr;
    obs::Counter* dead_letters = nullptr;
    obs::Counter* rematches = nullptr;
    obs::Counter* forks = nullptr;
    obs::Counter* rejoins = nullptr;
    obs::Counter* rescues = nullptr;
    obs::Histogram* queue_wait_ms = nullptr;
  } fm;
  if (metrics != nullptr) {
    fm.ticks = &metrics->counter("fleet.ticks");
    fm.placements = &metrics->counter("fleet.placements");
    fm.kills = &metrics->counter("fleet.kills");
    fm.requeues = &metrics->counter("fleet.requeues");
    fm.dead_letters = &metrics->counter("fleet.dead_letters");
    fm.rematches = &metrics->counter("fleet.rematches");
    fm.forks = &metrics->counter("fleet.topology_forks");
    fm.rejoins = &metrics->counter("fleet.archetype_rejoins");
    fm.rescues = &metrics->counter("fleet.rescues");
    fm.queue_wait_ms = &metrics->histogram("fleet.queue_wait_ms");
  }

  std::size_t max_server_gpus = 0;
  for (const Server& server : servers_) {
    max_server_gpus =
        std::max(max_server_gpus, server.mapa.hardware().num_vertices());
  }
  for (const workload::Job& job : jobs) {
    if (job.num_gpus > max_server_gpus) {
      throw std::invalid_argument(
          "FleetSimulator::run: job " + std::to_string(job.id) +
          " requests more GPUs than any server has");
    }
  }

  // Arrival order: by arrival time, stable by list position (FIFO) —
  // mirrors sim::Simulator so a 1-server fleet reproduces its schedule.
  std::vector<std::size_t> arrival_order(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) arrival_order[i] = i;
  std::stable_sort(arrival_order.begin(), arrival_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs[a].arrival_time_s < jobs[b].arrival_time_s;
                   });

  std::vector<FaultEvent> events = config_.events;
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time_s < b.time_s;
                   });
  // A reused simulator starts clean: rotation flags off, fault state
  // cleared, degraded servers re-joined to their pristine archetype (and
  // shared cache) before the first job arrives.
  for (Server& server : servers_) {
    const bool was_degraded = server.degraded();
    for (const graph::VertexId v : server.lost_gpus) {
      server.mapa.set_unusable(v, false);
    }
    server.lost_gpus.clear();
    server.degraded_links.clear();
    if (was_degraded) {
      server.mapa.rebind_topology(server.archetype);
      server.fault_cache.reset();
      if (server.cache != nullptr) {
        server.mapa.policy().set_match_cache(server.cache);
      }
    }
    server.draining = false;
    server.crashed = false;
  }

  // Caches live for the simulator's lifetime; snapshot their counters so
  // this run reports per-run deltas even on a reused FleetSimulator.
  std::vector<policy::MatchCacheStats> cache_baseline(servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (servers_[s].cache != nullptr) {
      cache_baseline[s] = servers_[s].cache->stats();
    }
  }

  FleetResult result;
  result.selection = selection_->name();
  result.shards = shards_.size();
  result.records.reserve(jobs.size());
  result.servers.resize(servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    ServerResult& sr = result.servers[s];
    sr.name = servers_[s].name;
    sr.topology = servers_[s].mapa.hardware().name();
    sr.policy = servers_[s].policy_name;
    sr.num_gpus = servers_[s].mapa.hardware().num_vertices();
    sr.shard = servers_[s].shard;
    sr.cache_primary = servers_[s].cache_primary;
  }

  // Per-shard queues plus incremental free-GPU counts so shard routing is
  // O(shards) per admission instead of O(servers). shard_free counts only
  // non-draining members; the per-tick probe memo is per server and is
  // dropped whenever that server commits or releases an allocation.
  std::vector<std::deque<std::size_t>> queues(shards_.size());
  std::vector<ProbeMemo> memo(servers_.size());
  std::vector<std::uint64_t> probe_count(servers_.size(), 0);
  std::vector<std::uint64_t> memo_hits(servers_.size(), 0);
  std::vector<std::size_t> server_free(servers_.size(), 0);
  std::vector<std::size_t> shard_free(shards_.size(), 0);
  // GPUs requested by jobs sitting in each shard's queue: routing ranks
  // shards by free capacity NET of this backlog, so a burst of same-time
  // arrivals spreads across shards instead of all chasing the shard that
  // looked freest before any of them was served.
  std::vector<long long> queued_gpus(shards_.size(), 0);
  // A shard needs re-scanning only after something it can see changed: a
  // job entered its queue, one of its servers committed/released/
  // drained/restored, or a rescue moved its work. A clean shard's scan
  // would replay the exact probes of its last failed scan (the memo makes
  // that cheap but not free — at 10k servers the redundant sweeps
  // dominate dispatch cost), so clean shards are skipped entirely; the
  // outcome is identical because nothing that scan reads has changed.
  std::vector<char> shard_dirty(shards_.size(), 1);
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    server_free[s] = servers_[s].mapa.free_accelerators();
    shard_free[servers_[s].shard] += server_free[s];
  }
  std::vector<std::size_t> all_servers(servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) all_servers[s] = s;

  // Fault machinery, populated only when the event list arms it (see
  // faults_armed_): the per-server live-job list a kill unwinds through,
  // per-job retry counters and last-kill times, the backoff heap, and the
  // alive flags killed placements are compacted through at run end. The
  // backoff jitter stream is derived from the master seed alone and drawn
  // in kill order (single-threaded, deterministic), so identical fault
  // schedules replay identical backoff delays at any thread count.
  const bool armed = faults_armed_;
  // Per-server live list, sorted ascending by allocation id without any
  // effort: each server's Mapa hands out strictly increasing ids, so
  // appending keeps placement order, and the list length is bounded by
  // the server's GPU count — linear find beats a node-allocating map.
  std::vector<std::vector<std::pair<std::uint64_t, LiveJob>>> live(
      servers_.size());
  std::vector<std::uint32_t> job_retries(jobs.size(), 0);
  std::vector<double> job_kill_time(jobs.size(), 0.0);
  std::vector<Retry> retry_heap;
  std::uint64_t retry_seq = 0;
  util::Rng backoff_rng(config_.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<char> record_alive;
  // Private-cache stats harvested at each archetype re-join (and at run
  // end for still-degraded servers), attributed to the degraded server.
  std::vector<std::uint64_t> fault_hits(servers_.size(), 0);
  std::vector<std::uint64_t> fault_misses(servers_.size(), 0);
  // In-rotation server count per shard (routing avoids dead shards) and
  // fleet-wide crash/degrade counts for the capacity_degraded_ticks stat.
  std::vector<std::size_t> shard_alive(shards_.size(), 0);
  for (const Shard& shard : shards_) {
    shard_alive[&shard - shards_.data()] = shard.servers.size();
  }
  std::size_t num_crashed = 0;
  std::size_t num_degraded = 0;

  std::vector<Running> running;  // min-heap on finish_s (std::greater)
  std::size_t next_arrival = 0;
  std::size_t next_event = 0;
  double now = 0.0;
  std::uint64_t tick = 0;
  std::uint64_t finished_jobs = 0;

  // Telemetry time-series: one fleet-state sample every
  // `telemetry_every` ticks (plus a final one at drain), written from
  // this single-threaded dispatch loop only.
  std::size_t fleet_total_gpus = 0;
  for (const Server& server : servers_) {
    fleet_total_gpus += server.mapa.hardware().num_vertices();
  }
  const auto sample_telemetry = [&]() {
    obs::TelemetrySample sample;
    sample.tick = tick;
    sample.sim_time_s = now;
    for (const std::deque<std::size_t>& q : queues) {
      sample.jobs_pending += q.size();
    }
    sample.jobs_running = running.size();
    sample.jobs_finished = finished_jobs;
    sample.dead_letters = result.dead_letters.size();
    sample.retry_backlog = retry_heap.size();
    for (const std::size_t f : server_free) sample.free_gpus += f;
    sample.total_gpus = fleet_total_gpus;
    sample.crashed_servers = num_crashed;
    sample.degraded_servers = num_degraded;
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      if (servers_[s].fault_cache != nullptr) ++sample.forked_servers;
      sample.memo_hits += memo_hits[s];
      sample.memo_probes += memo_hits[s] + probe_count[s];
    }
    sample.shards.resize(shards_.size());
    for (std::size_t sh = 0; sh < shards_.size(); ++sh) {
      obs::ShardSample& ss = sample.shards[sh];
      ss.queue_depth = queues[sh].size();
      ss.queued_gpus =
          static_cast<std::uint64_t>(std::max(queued_gpus[sh], 0LL));
      ss.free_gpus = shard_free[sh];
      ss.live_servers = shard_alive[sh];
    }
    // Per-archetype cache state: one entry per distinct shared cache, in
    // fleet order of the archetype's primary server. Forked servers
    // probe a private fault cache, so they are not counted as attached.
    std::unordered_map<const policy::MatchCache*, std::size_t> archetype_of;
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      const Server& server = servers_[s];
      if (server.cache == nullptr) continue;
      const auto [it, inserted] = archetype_of.try_emplace(
          server.cache.get(), sample.archetypes.size());
      if (inserted) {
        obs::ArchetypeSample as;
        as.name = server.archetype.graph().name();
        const policy::MatchCacheStats stats = server.cache->stats();
        as.cache_hits = stats.hits - cache_baseline[s].hits;
        as.cache_misses = stats.misses - cache_baseline[s].misses;
        as.cache_bypasses = stats.bypasses - cache_baseline[s].bypasses;
        sample.archetypes.push_back(std::move(as));
      }
      if (server.fault_cache == nullptr) {
        ++sample.archetypes[it->second].servers;
      }
    }
    telemetry->append(std::move(sample));
  };

  const auto queues_empty = [&]() {
    for (const std::deque<std::size_t>& q : queues) {
      if (!q.empty()) return false;
    }
    return true;
  };

  // EVERY event that touches a server drops that server's probe memo and
  // re-dirties its shard, whatever the kind: a fault changes the answers
  // probes would give (lost GPU, cut link), and even drain/restore must
  // wake a clean shard so the skip never hides an eligibility change.
  const auto invalidate_server = [&](std::size_t s) {
    memo[s].clear();
    shard_dirty[servers_[s].shard] = 1;
  };

  const auto in_rotation = [&](std::size_t s) {
    return !servers_[s].draining && !servers_[s].crashed;
  };

  // Rotation transitions (drain/restore/crash) keep shard_free — which
  // counts in-rotation servers only — and the per-shard alive count in
  // sync.
  const auto update_rotation = [&](std::size_t s, bool draining,
                                   bool crashed) {
    Server& server = servers_[s];
    const bool was = !server.draining && !server.crashed;
    if (crashed != server.crashed) num_crashed += crashed ? 1 : -1;
    server.draining = draining;
    server.crashed = crashed;
    const bool is = !server.draining && !server.crashed;
    if (was && !is) {
      shard_free[server.shard] -= server_free[s];
      --shard_alive[server.shard];
    } else if (!was && is) {
      shard_free[server.shard] += server_free[s];
      ++shard_alive[server.shard];
    }
    shard_dirty[server.shard] = 1;
  };

  const auto link_key = [](graph::VertexId u, graph::VertexId v) {
    return std::pair<graph::VertexId, graph::VertexId>(std::min(u, v),
                                                       std::max(u, v));
  };

  // Deterministic shard picker: among shards with at least one server
  // large enough for the job, route to the one with the most free
  // accelerators (draining servers count zero) net of the GPUs its queue
  // already owes, ties toward the lowest shard index. Capacity
  // eligibility is static (run() has already validated that some server
  // fits), so a routed job may still have to wait out a drain — the
  // rescue pass below covers pathological cases.
  // Shards whose every server is out of rotation (e.g. crashed away) are
  // avoided while any eligible shard still has a live server, so re-tried
  // and re-routed jobs never queue behind a dead shard; when every
  // eligible shard is dead the job queues on the best dead one and waits
  // for a restore. Fault-free this is the original picker bit for bit
  // (every shard is alive).
  const auto route = [&](std::size_t job_index) {
    obs::Span span(trace, "fleet", "route");
    const workload::Job& job = jobs[job_index];
    std::size_t best = 0;
    long long best_slack = 0;
    bool found = false;
    bool found_alive = false;
    for (std::size_t sh = 0; sh < shards_.size(); ++sh) {
      if (shards_[sh].max_gpus < job.num_gpus) continue;
      const bool alive = shard_alive[sh] > 0;
      if (found_alive && !alive) continue;
      const long long slack =
          static_cast<long long>(shard_free[sh]) - queued_gpus[sh];
      if (!found || (alive && !found_alive) || slack > best_slack) {
        best = sh;
        best_slack = slack;
        found = true;
        found_alive = alive;
      }
    }
    queued_gpus[best] += static_cast<long long>(job.num_gpus);
    queues[best].push_back(job_index);
    shard_dirty[best] = 1;
    span.arg("job", job.id);
    span.arg("shard", best);
  };

  const auto admit_arrivals = [&](double time) {
    while (next_arrival < arrival_order.size() &&
           jobs[arrival_order[next_arrival]].arrival_time_s <= time) {
      route(arrival_order[next_arrival]);
      ++next_arrival;
    }
  };
  // Kill one running job: release its accelerators, erase its (not yet
  // surviving) record and heap entry, and either re-queue it with
  // exponential backoff or dead-letter it when the retry budget is spent.
  const auto kill_job = [&](std::size_t s, std::uint64_t allocation_id) {
    const auto it =
        std::find_if(live[s].begin(), live[s].end(),
                     [&](const auto& e) { return e.first == allocation_id; });
    if (it == live[s].end()) return;  // already finished this instant
    obs::Span span(trace, "fleet", "kill");
    span.arg("server", s);
    const LiveJob lj = it->second;
    live[s].erase(it);
    servers_[s].mapa.release(allocation_id);
    const std::size_t gpus = lj.num_gpus;
    server_free[s] += gpus;
    if (in_rotation(s)) shard_free[servers_[s].shard] += gpus;
    std::erase_if(running, [&](const Running& r) {
      return r.server == s && r.allocation_id == allocation_id;
    });
    std::make_heap(running.begin(), running.end(), std::greater<>{});
    record_alive[lj.record_index] = 0;
    ServerResult& sr = result.servers[s];
    --sr.jobs_placed;  // only surviving placements count
    sr.busy_gpu_seconds -=
        static_cast<double>(gpus) * (lj.finish_s - now);  // unexecuted part
    ++result.resilience.jobs_killed;
    if (fm.kills != nullptr) fm.kills->inc();
    const std::uint32_t kills = ++job_retries[lj.job_index];
    span.arg("kills", kills);
    job_kill_time[lj.job_index] = now;
    if (kills > config_.max_retries) {
      result.dead_letters.push_back(
          DeadLetter{jobs[lj.job_index], kills, now});
      ++result.resilience.jobs_dead_lettered;
      if (fm.dead_letters != nullptr) fm.dead_letters->inc();
    } else {
      const double u = backoff_rng.uniform();
      const double delay =
          config_.backoff_base_s *
          std::pow(config_.backoff_factor, static_cast<double>(kills - 1)) *
          (1.0 + config_.backoff_jitter * u);
      retry_heap.push_back(Retry{now + delay, retry_seq++, lj.job_index});
      std::push_heap(retry_heap.begin(), retry_heap.end(), std::greater<>{});
      ++result.resilience.jobs_requeued;
      if (fm.requeues != nullptr) fm.requeues->inc();
    }
  };

  const auto kill_all_on = [&](std::size_t s) {
    std::vector<std::uint64_t> victims;  // ascending id = placement order
    victims.reserve(live[s].size());
    for (const auto& [id, lj] : live[s]) victims.push_back(id);
    for (const std::uint64_t id : victims) kill_job(s, id);
  };

  // Rebuild server s's working topology from its archetype plus fault
  // state. Degraded: a private fork — lost GPUs isolated, degraded links
  // scaled or removed — whose fingerprint differs from the archetype's
  // (bandwidth enters graph::topology_fingerprint), plus a private match
  // cache so the fork's wholesale invalidation can never evict the
  // healthy siblings' shared entries. Clean again: re-join the archetype
  // handle and shared cache, harvesting the private cache's stats.
  const auto fork_or_rejoin = [&](std::size_t s, bool was_degraded) {
    Server& server = servers_[s];
    if (server.degraded()) {
      const graph::Graph& base = server.archetype.graph();
      graph::Graph forked(base.num_vertices(), base.name());
      for (std::size_t v = 0; v < base.num_vertices(); ++v) {
        forked.set_socket(static_cast<graph::VertexId>(v),
                          base.socket(static_cast<graph::VertexId>(v)));
      }
      for (const graph::Edge& e : base.edges()) {
        if (std::binary_search(server.lost_gpus.begin(),
                               server.lost_gpus.end(), e.u) ||
            std::binary_search(server.lost_gpus.begin(),
                               server.lost_gpus.end(), e.v)) {
          continue;
        }
        double factor = 1.0;
        const auto key = link_key(e.u, e.v);
        for (const auto& [link, f] : server.degraded_links) {
          if (link == key) {
            factor = f;
            break;
          }
        }
        if (factor == 0.0) continue;  // link down: the edge disappears
        forked.add_edge(e.u, e.v, e.type, e.bandwidth_gbps * factor);
      }
      server.mapa.rebind_topology(graph::TopologyHandle(std::move(forked)));
      ++result.resilience.topology_forks;
      if (fm.forks != nullptr) fm.forks->inc();
      if (trace != nullptr) trace->instant("fleet", "fork");
      if (!was_degraded) {
        ++num_degraded;
        if (server.cache != nullptr) {
          server.fault_cache = std::make_shared<policy::MatchCache>();
          server.mapa.policy().set_match_cache(server.fault_cache);
        }
      }
    } else if (was_degraded) {
      server.mapa.rebind_topology(server.archetype);
      ++result.resilience.archetype_rejoins;
      if (fm.rejoins != nullptr) fm.rejoins->inc();
      if (trace != nullptr) trace->instant("fleet", "rejoin");
      --num_degraded;
      if (server.fault_cache != nullptr) {
        const policy::MatchCacheStats stats = server.fault_cache->stats();
        fault_hits[s] += stats.hits;
        fault_misses[s] += stats.misses;
        server.fault_cache.reset();
        server.mapa.policy().set_match_cache(server.cache);
      }
    }
  };

  // After a link change, walk server s's running jobs: a mapping whose
  // pattern edges all survive is untouched (a factor > 0 degrade keeps
  // every edge, so it never disturbs running work); a broken mapping is
  // re-matched in place — the pattern re-enumerated over the job's own
  // held accelerators on the degraded topology — and only killed when no
  // embedding remains. A re-match keeps the job's accelerators, exec
  // time, and finish time; the record's mapping is updated (its placement
  // scores still describe the original decision).
  const auto recheck_running = [&](std::size_t s) {
    Server& server = servers_[s];
    const graph::Graph& hw = server.mapa.hardware();
    std::vector<std::uint64_t> broken;
    for (auto& [id, lj] : live[s]) {
      std::vector<graph::VertexId>& mapped =
          result.records[lj.record_index].record.gpus;
      const graph::Graph pattern = jobs[lj.job_index].application_graph();
      bool intact = true;
      for (const graph::Edge& e : pattern.edges()) {
        if (!hw.has_edge(mapped[e.u], mapped[e.v])) {
          intact = false;
          break;
        }
      }
      if (intact) continue;
      std::vector<bool> outside(hw.num_vertices(), true);
      for (const graph::VertexId v : mapped) outside[v] = false;
      match::EnumerateOptions options;
      options.forbidden = graph::VertexMask::of_busy(outside);
      options.trace = trace;
      const std::vector<match::Match> matches =
          match::find_matches(pattern, hw, options, /*limit=*/1);
      if (!matches.empty()) {
        mapped = matches.front().mapping;
        ++result.resilience.jobs_rematched;
        if (fm.rematches != nullptr) fm.rematches->inc();
        if (trace != nullptr) trace->instant("fleet", "rematch");
      } else {
        broken.push_back(id);
      }
    }
    for (const std::uint64_t id : broken) kill_job(s, id);
  };

  // A crash that takes a shard's last in-rotation server re-routes the
  // shard's queued jobs immediately — while capacity exists elsewhere
  // they are rescued, not left to wait for the fleet-idle rescue pass.
  const auto reroute_if_dead = [&](std::size_t sh) {
    if (shard_alive[sh] > 0 || queues[sh].empty()) return;
    std::deque<std::size_t> moved;
    moved.swap(queues[sh]);
    for (const std::size_t ji : moved) {
      queued_gpus[sh] -= static_cast<long long>(jobs[ji].num_gpus);
    }
    for (const std::size_t ji : moved) route(ji);
  };

  const auto admit_retries = [&](double time) {
    while (!retry_heap.empty() && retry_heap.front().ready_s <= time) {
      std::pop_heap(retry_heap.begin(), retry_heap.end(), std::greater<>{});
      const Retry retry = retry_heap.back();
      retry_heap.pop_back();
      if (trace != nullptr) trace->instant("fleet", "retry");
      route(retry.job_index);
    }
  };

  // Static span names per fault kind, so a trace groups fault handling
  // by what happened rather than one opaque "event".
  const auto event_span_name = [](FaultEvent::Kind kind) {
    switch (kind) {
      case FaultEvent::Kind::kDrain: return "drain";
      case FaultEvent::Kind::kRestore: return "restore";
      case FaultEvent::Kind::kServerCrash: return "server_crash";
      case FaultEvent::Kind::kGpuLoss: return "gpu_loss";
      case FaultEvent::Kind::kGpuRecover: return "gpu_recover";
      case FaultEvent::Kind::kLinkDegrade: return "link_degrade";
      case FaultEvent::Kind::kLinkRepair: return "link_repair";
    }
    return "fault";
  };
  const auto apply_events = [&](double time) {
    while (next_event < events.size() && events[next_event].time_s <= time) {
      const FaultEvent& event = events[next_event];
      ++next_event;
      const std::size_t s = event.server;
      Server& server = servers_[s];
      obs::Span span(trace, "fault", event_span_name(event.kind));
      span.arg("server", s);
      span.arg("sim_time_s", event.time_s);
      switch (event.kind) {
        case FaultEvent::Kind::kDrain:
          update_rotation(s, true, server.crashed);
          break;
        case FaultEvent::Kind::kRestore:
          update_rotation(s, false, false);
          break;
        case FaultEvent::Kind::kServerCrash: {
          if (server.crashed) break;
          update_rotation(s, server.draining, true);
          kill_all_on(s);
          reroute_if_dead(server.shard);
          break;
        }
        case FaultEvent::Kind::kGpuLoss: {
          if (std::binary_search(server.lost_gpus.begin(),
                                 server.lost_gpus.end(), event.u)) {
            break;  // already lost
          }
          const bool was_degraded = server.degraded();
          // Kill the job holding the lost accelerator first (a pattern
          // cannot embed in its shrunken hold), so the unusable mark
          // below never overlaps a live allocation.
          if (server.mapa.busy()[event.u]) {
            for (const auto& [id, lj] : live[s]) {
              const std::vector<graph::VertexId>& mapped =
                  result.records[lj.record_index].record.gpus;
              if (std::find(mapped.begin(), mapped.end(), event.u) !=
                  mapped.end()) {
                kill_job(s, id);
                break;
              }
            }
          }
          server.lost_gpus.insert(
              std::lower_bound(server.lost_gpus.begin(),
                               server.lost_gpus.end(), event.u),
              event.u);
          server.mapa.set_unusable(event.u, true);
          --server_free[s];
          if (in_rotation(s)) --shard_free[server.shard];
          fork_or_rejoin(s, was_degraded);
          break;
        }
        case FaultEvent::Kind::kGpuRecover: {
          const auto found =
              std::lower_bound(server.lost_gpus.begin(),
                               server.lost_gpus.end(), event.u);
          if (found == server.lost_gpus.end() || *found != event.u) {
            break;  // not lost: no-op
          }
          const bool was_degraded = server.degraded();
          server.lost_gpus.erase(found);
          server.mapa.set_unusable(event.u, false);
          ++server_free[s];
          if (in_rotation(s)) ++shard_free[server.shard];
          fork_or_rejoin(s, was_degraded);
          break;
        }
        case FaultEvent::Kind::kLinkDegrade: {
          if (server.archetype.graph().edge(event.u, event.v) == nullptr) {
            break;  // no such link on this archetype: no-op
          }
          const auto key = link_key(event.u, event.v);
          const bool was_degraded = server.degraded();
          auto it = std::lower_bound(
              server.degraded_links.begin(), server.degraded_links.end(),
              key,
              [](const auto& entry, const auto& k) { return entry.first < k; });
          if (it != server.degraded_links.end() && it->first == key) {
            if (it->second == event.bandwidth_factor) break;  // no change
            it->second = event.bandwidth_factor;
          } else {
            server.degraded_links.insert(it,
                                         {key, event.bandwidth_factor});
          }
          fork_or_rejoin(s, was_degraded);
          recheck_running(s);
          break;
        }
        case FaultEvent::Kind::kLinkRepair: {
          const auto key = link_key(event.u, event.v);
          const bool was_degraded = server.degraded();
          auto it = std::lower_bound(
              server.degraded_links.begin(), server.degraded_links.end(),
              key,
              [](const auto& entry, const auto& k) { return entry.first < k; });
          if (it == server.degraded_links.end() || it->first != key) {
            break;  // link is healthy: no-op
          }
          server.degraded_links.erase(it);
          // Repair only adds edges/bandwidth back; running mappings that
          // embedded before still embed, so no re-check is needed.
          fork_or_rejoin(s, was_degraded);
          break;
        }
      }
      invalidate_server(s);
    }
  };
  apply_events(now);
  admit_arrivals(now);

  // Commit a winning probe and record the placement. `queue_shard` and
  // `queue_pos` locate the job in the queue it currently sits in (its own
  // shard's, or — on a rescue — one foreign to the winning server).
  const auto place = [&](std::size_t queue_shard, std::size_t queue_pos,
                         ServerProbe& winner, const graph::Graph& pattern,
                         double overhead_ms) {
    obs::Span span(trace, "fleet", "commit");
    span.arg("server", winner.server);
    std::deque<std::size_t>& queue = queues[queue_shard];
    Server& server = servers_[winner.server];
    const std::size_t job_index = queue[queue_pos];
    const workload::Job& job = jobs[job_index];
    span.arg("job", job.id);
    const core::Allocation allocation =
        server.mapa.commit(std::move(*winner.placement));

    sim::JobRecord record;
    record.job = job;
    record.gpus = allocation.gpus();
    record.queued_s = job.arrival_time_s;
    record.start_s = now;
    record.aggregated_bw = allocation.aggregated_bw();
    record.predicted_effbw = allocation.predicted_effbw();
    record.preserved_bw = allocation.preserved_bw();
    record.scheduling_overhead_ms = overhead_ms;

    match::Match m;
    m.mapping = allocation.gpus();
    record.measured_effbw = interconnect::measured_effective_bandwidth(
        pattern, server.mapa.hardware(), m, config_.sim.microbench);

    const workload::ExecModel model(job.profile());
    const double effbw = config_.sim.exec_uses_measured_effbw
                             ? record.measured_effbw
                             : record.predicted_effbw;
    record.exec_s = model.exec_time_s(job.num_gpus, effbw, job.iter_scale);
    record.finish_s = now + record.exec_s;

    ServerResult& sr = result.servers[winner.server];
    ++sr.jobs_placed;
    sr.busy_gpu_seconds +=
        static_cast<double>(record.gpus.size()) * record.exec_s;
    if (fm.placements != nullptr) fm.placements->inc();
    if (fm.queue_wait_ms != nullptr) {
      fm.queue_wait_ms->record(static_cast<std::uint64_t>(
          std::max(0.0, (now - record.queued_s) * 1000.0)));
    }

    const std::size_t gpus = record.gpus.size();
    server_free[winner.server] -= gpus;
    if (!server.draining) shard_free[server.shard] -= gpus;
    queued_gpus[queue_shard] -= static_cast<long long>(job.num_gpus);
    shard_dirty[queue_shard] = 1;
    shard_dirty[server.shard] = 1;
    memo[winner.server].clear();  // busy mask changed: stale probe answers

    const double finish_s = record.finish_s;
    running.push_back(
        Running{finish_s, winner.server, allocation.id(), gpus});
    std::push_heap(running.begin(), running.end(), std::greater<>{});
    // job_retries is a random 32 KB read per placement; every entry is
    // still zero until the first kill, so skip it while no fault has
    // fired (keeps the armed-but-idle path at fault-free speed).
    const std::uint32_t retries = (armed && result.resilience.jobs_killed > 0)
                                      ? job_retries[job_index]
                                      : 0;
    if (retries > 0) {
      // Simulated kill-to-re-placement latency (includes the backoff).
      result.resilience.replace_latency_s.push_back(
          now - job_kill_time[job_index]);
    }
    result.records.push_back(
        FleetRecord{std::move(record), winner.server, retries});
    if (armed) {
      record_alive.push_back(1);
      live[winner.server].emplace_back(
          allocation.id(),
          LiveJob{job_index, gpus, finish_s, result.records.size() - 1});
    }
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(queue_pos));
  };

  // Serve one shard: FIFO head first; optionally backfill a later job
  // past a blocked head (SimConfig.backfill, same window semantics as the
  // single-server engine). Places at most one job per call; probes only
  // the shard's own servers.
  const auto serve_shard = [&](std::size_t sh) {
    std::deque<std::size_t>& queue = queues[sh];
    if (queue.empty()) return false;
    obs::Span span(trace, "fleet", "serve_shard");
    span.arg("shard", sh);

    std::size_t queue_pos = 0;
    std::optional<std::size_t> chosen_probe;
    std::vector<ServerProbe> probes;
    double overhead_ms = 0.0;
    const std::size_t scan_limit =
        config_.sim.backfill
            ? std::min(queue.size(), config_.sim.backfill_window + 1)
            : std::size_t{1};
    graph::Graph pattern;
    for (; queue_pos < scan_limit; ++queue_pos) {
      const workload::Job& candidate = jobs[queue[queue_pos]];
      pattern = candidate.application_graph();
      const std::uint64_t key =
          memo_enabled_ ? probe_key(pattern, candidate.bandwidth_sensitive)
                        : 0;
      const auto wall_start = std::chrono::steady_clock::now();
      probes = probe_servers(shards_[sh].servers, pattern, key, candidate,
                             server_free, memo, probe_count, memo_hits);
      chosen_probe = selection_->select(probes);
      const auto wall_end = std::chrono::steady_clock::now();
      overhead_ms +=
          std::chrono::duration<double, std::milli>(wall_end - wall_start)
              .count();
      if (chosen_probe) break;
    }
    result.total_scheduling_ms += overhead_ms;
    if (!chosen_probe) return false;  // nothing fits here: wait or rescue

    place(sh, queue_pos, probes[*chosen_probe], pattern, overhead_ms);
    return true;
  };

  // Cross-shard rescue: only reached when the fleet is otherwise idle
  // (nothing running, arriving, or scheduled) yet some shard queue is
  // stuck — e.g. every sufficiently large server of the routed shard was
  // drained after routing. Re-probe each shard's servable candidates
  // against the whole fleet and place the first one that fits anywhere;
  // the scan respects the same head/backfill window as normal serving, so
  // rescue never places a job the in-shard scheduler would not have
  // reached. Returns false only when no server in the fleet fits any
  // servable candidate — the genuinely-unplaceable case.
  const auto rescue = [&]() {
    obs::Span span(trace, "fleet", "rescue");
    for (std::size_t sh = 0; sh < shards_.size(); ++sh) {
      std::deque<std::size_t>& queue = queues[sh];
      if (queue.empty()) continue;
      const std::size_t scan_limit =
          config_.sim.backfill
              ? std::min(queue.size(), config_.sim.backfill_window + 1)
              : std::size_t{1};
      graph::Graph pattern;
      for (std::size_t pos = 0; pos < scan_limit; ++pos) {
        const workload::Job& candidate = jobs[queue[pos]];
        pattern = candidate.application_graph();
        const std::uint64_t key =
            memo_enabled_ ? probe_key(pattern, candidate.bandwidth_sensitive)
                          : 0;
        const auto wall_start = std::chrono::steady_clock::now();
        std::vector<ServerProbe> probes =
            probe_servers(all_servers, pattern, key, candidate, server_free,
                          memo, probe_count, memo_hits);
        const std::optional<std::size_t> chosen = selection_->select(probes);
        const auto wall_end = std::chrono::steady_clock::now();
        const double overhead_ms =
            std::chrono::duration<double, std::milli>(wall_end - wall_start)
                .count();
        result.total_scheduling_ms += overhead_ms;
        if (chosen) {
          if (fm.rescues != nullptr) fm.rescues->inc();
          place(sh, pos, probes[*chosen], pattern, overhead_ms);
          return true;
        }
      }
    }
    return false;
  };

  // Events are pure wakeups for queued work: once the queues, running set,
  // and arrivals are exhausted, remaining drains/restores can't change
  // anything and must not extend the makespan.
  while (!queues_empty() || !running.empty() || !retry_heap.empty() ||
         next_arrival < arrival_order.size()) {
    obs::Span tick_span(trace, "fleet", "tick");
    tick_span.arg("tick", tick);
    tick_span.arg("sim_time_s", now);
    if (fm.ticks != nullptr) fm.ticks->inc();
    if (telemetry != nullptr && telemetry_every > 0 &&
        tick % telemetry_every == 0) {
      sample_telemetry();
    }
    ++tick;
    if (num_crashed > 0 || num_degraded > 0) {
      ++result.resilience.capacity_degraded_ticks;
    }
    // Serve the shards round-robin, one placement at a time, until no
    // shard can place anything more at the current instant. Shards whose
    // visible state hasn't changed since their last failed scan are
    // skipped (see shard_dirty above).
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t sh = 0; sh < shards_.size(); ++sh) {
        if (!shard_dirty[sh]) continue;
        if (serve_shard(sh)) {
          progressed = true;
        } else {
          shard_dirty[sh] = 0;
        }
      }
    }

    if (running.empty() && queues_empty() && retry_heap.empty() &&
        next_arrival >= arrival_order.size()) {
      break;
    }

    // Advance time to the next event: a completion, an arrival, a
    // scheduled fault/repair, or a retry coming off backoff.
    bool have_next = false;
    double next_time = 0.0;
    const auto consider = [&](double t) {
      if (!have_next || t < next_time) next_time = t;
      have_next = true;
    };
    if (!running.empty()) consider(running.front().finish_s);
    if (next_arrival < arrival_order.size()) {
      consider(jobs[arrival_order[next_arrival]].arrival_time_s);
    }
    if (next_event < events.size()) consider(events[next_event].time_s);
    if (!retry_heap.empty()) consider(retry_heap.front().ready_s);
    if (!have_next) {
      if (shards_.size() > 1 && rescue()) continue;
      // Some queue is non-empty but nothing is running, arriving, or
      // scheduled, and (after the rescue pass, when sharded) no server in
      // the fleet fits. A fault-retried job stuck here was made
      // unplaceable by permanent faults: dead-letter it and move on. A
      // fresh job that never fit anywhere keeps the hard error.
      bool dropped = false;
      for (std::size_t sh = 0; sh < shards_.size(); ++sh) {
        std::deque<std::size_t>& queue = queues[sh];
        for (std::size_t pos = 0; pos < queue.size();) {
          const std::size_t ji = queue[pos];
          if (armed && job_retries[ji] > 0) {
            result.dead_letters.push_back(
                DeadLetter{jobs[ji], job_retries[ji], now});
            ++result.resilience.jobs_dead_lettered;
            queued_gpus[sh] -= static_cast<long long>(jobs[ji].num_gpus);
            queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pos));
            dropped = true;
          } else {
            ++pos;
          }
        }
      }
      if (dropped) continue;
      std::size_t stuck = 0;
      for (const std::deque<std::size_t>& q : queues) {
        if (!q.empty()) {
          stuck = q.front();
          break;
        }
      }
      throw std::runtime_error("FleetSimulator::run: job " +
                               std::to_string(jobs[stuck].id) +
                               " cannot be placed on any idle server");
    }
    now = std::max(now, next_time);

    while (!running.empty() && running.front().finish_s <= now) {
      const Running done = running.front();
      std::pop_heap(running.begin(), running.end(), std::greater<>{});
      running.pop_back();
      ++finished_jobs;
      servers_[done.server].mapa.release(done.allocation_id);
      if (armed) {
        std::erase_if(live[done.server], [&](const auto& e) {
          return e.first == done.allocation_id;
        });
      }
      server_free[done.server] += done.gpus;
      if (in_rotation(done.server)) {
        shard_free[servers_[done.server].shard] += done.gpus;
      }
      shard_dirty[servers_[done.server].shard] = 1;
      memo[done.server].clear();  // busy mask changed: stale probe answers
    }
    apply_events(now);
    admit_retries(now);
    admit_arrivals(now);
  }

  // Compact away killed placements: only surviving runs are records.
  if (armed) {
    std::size_t write = 0;
    for (std::size_t i = 0; i < result.records.size(); ++i) {
      if (!record_alive[i]) continue;
      if (write != i) result.records[write] = std::move(result.records[i]);
      ++write;
    }
    result.records.resize(write);
  }

  result.makespan_s = now;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    ServerResult& sr = result.servers[s];
    if (result.makespan_s > 0.0 && sr.num_gpus > 0) {
      sr.utilization = sr.busy_gpu_seconds /
                       (static_cast<double>(sr.num_gpus) * result.makespan_s);
    }
    sr.probes = probe_count[s];
    sr.probe_memo_hits = memo_hits[s];
    // Shared caches report through the archetype's primary server only,
    // so pooled fleet totals never double-count one cache's deltas.
    if (servers_[s].cache != nullptr && servers_[s].cache_primary) {
      const policy::MatchCacheStats stats = servers_[s].cache->stats();
      sr.match_cache_hits = stats.hits - cache_baseline[s].hits;
      sr.match_cache_misses = stats.misses - cache_baseline[s].misses;
    }
    // A server still degraded at run end reports its private cache here;
    // re-joined servers were harvested at re-join time.
    if (servers_[s].fault_cache != nullptr) {
      const policy::MatchCacheStats stats = servers_[s].fault_cache->stats();
      fault_hits[s] += stats.hits;
      fault_misses[s] += stats.misses;
    }
    sr.match_cache_hits += fault_hits[s];
    sr.match_cache_misses += fault_misses[s];
  }
  if (telemetry != nullptr) sample_telemetry();
  if (metrics != nullptr) {
    std::uint64_t total_probes = 0;
    std::uint64_t total_memo_hits = 0;
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      total_probes += probe_count[s];
      total_memo_hits += memo_hits[s];
    }
    metrics->counter("fleet.probes").add(total_probes);
    metrics->counter("fleet.memo_hits").add(total_memo_hits);
  }
  if (config_.observer != nullptr && config_.observer->config().zero_wall_clock) {
    result.total_scheduling_ms = 0.0;
    for (FleetRecord& r : result.records) {
      r.record.scheduling_overhead_ms = 0.0;
    }
  }
  return result;
}

FleetResult run_fleet(std::vector<graph::Graph> topologies,
                      const std::string& policy_name,
                      const std::vector<workload::Job>& jobs,
                      const ClusterConfig& config) {
  std::vector<ServerSpec> specs;
  specs.reserve(topologies.size());
  for (graph::Graph& topology : topologies) {
    ServerSpec spec;
    spec.topology = graph::TopologyHandle(std::move(topology));
    spec.policy = policy_name;
    specs.push_back(std::move(spec));
  }
  FleetSimulator simulator(std::move(specs), config);
  return simulator.run(jobs);
}

std::vector<ServerSpec> archetype_fleet_specs(
    std::size_t servers, const std::vector<FleetArchetype>& archetypes) {
  if (servers == 0) {
    throw std::invalid_argument("archetype_fleet_specs: zero servers");
  }
  if (archetypes.empty()) {
    throw std::invalid_argument("archetype_fleet_specs: no archetypes");
  }
  std::size_t total_weight = 0;
  for (const FleetArchetype& arch : archetypes) {
    if (arch.weight == 0) {
      throw std::invalid_argument("archetype_fleet_specs: zero weight");
    }
    if (arch.topology.empty()) {
      throw std::invalid_argument("archetype_fleet_specs: empty topology");
    }
    total_weight += arch.weight;
  }

  // Smooth weighted round-robin: each step every archetype gains its
  // weight in credit, the richest archetype (ties toward the earliest) is
  // stamped and pays back the total. A 3:1 weighting therefore
  // interleaves A A A B A A A B ... instead of front-loading one
  // archetype, which keeps contiguous dispatcher shards representative of
  // the whole fleet mix.
  std::vector<long long> credit(archetypes.size(), 0);
  std::vector<std::size_t> stamped(archetypes.size(), 0);
  std::vector<ServerSpec> specs;
  specs.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i) {
    std::size_t pick = 0;
    for (std::size_t a = 0; a < archetypes.size(); ++a) {
      credit[a] += static_cast<long long>(archetypes[a].weight);
      if (credit[a] > credit[pick]) pick = a;
    }
    credit[pick] -= static_cast<long long>(total_weight);

    const FleetArchetype& arch = archetypes[pick];
    ServerSpec spec;
    spec.name = (arch.name.empty() ? arch.topology.name() : arch.name) + "-" +
                std::to_string(stamped[pick]++);
    spec.topology = arch.topology;  // shared handle, not a graph copy
    spec.policy = arch.policy;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<ServerSpec> rack_fleet_specs(std::size_t racks,
                                         std::size_t nodes_per_rack,
                                         const std::string& policy_name) {
  // One rack archetype built once and shared across every server: at
  // fleet scale the dense rack matrices are the dominant per-server
  // allocation, so the fleet holds one copy instead of `racks`.
  FleetArchetype arch;
  arch.name = "rack";
  arch.topology = graph::TopologyHandle(graph::dgx_rack(nodes_per_rack));
  arch.policy = policy_name;
  return archetype_fleet_specs(racks, {arch});
}

}  // namespace mapa::cluster
