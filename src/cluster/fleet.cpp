#include "cluster/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "graph/algorithms.hpp"
#include "graph/topology.hpp"
#include "interconnect/microbench.hpp"
#include "match/enumerator.hpp"
#include "policy/match_cache.hpp"
#include "util/rng.hpp"
#include "workload/exec_model.hpp"

namespace mapa::cluster {

namespace {

/// Probe-memo key: the pattern's adjacency fingerprint (shape identity —
/// GPU count and edge structure) mixed with the sensitivity flag, then
/// finalized so near-identical fingerprints spread across buckets. A
/// policy's answer depends on nothing else once the server's busy mask is
/// fixed; the legacy memo clears whenever that mask changes, while the
/// cross-tick memo additionally folds the server's allocation-state
/// fingerprint into the key (see probe_servers), so stale entries stop
/// matching instead of needing a clear.
std::uint64_t probe_key(const graph::Graph& pattern, bool sensitive) {
  std::uint64_t x = graph::adjacency_fingerprint(pattern) ^
                    (sensitive ? 0x9e3779b97f4a7c15ULL : 0x2545f4914f6cdd1dULL);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

double FleetResult::throughput_jobs_per_hour() const {
  if (makespan_s <= 0.0) return 0.0;
  return static_cast<double>(records.size()) / makespan_s * 3600.0;
}

const FleetRecord* FleetResult::find(int job_id) const {
  for (const FleetRecord& r : records) {
    if (r.record.job.id == job_id) return &r;
  }
  return nullptr;
}

/// All mutable state of one start()..finish() session. This is the former
/// run() body's locals verbatim, lifted into a struct so the loop can be
/// suspended between ticks: run() is now start + submit-all + step-to-idle
/// + finish over this state, and the svc/ daemon drives the same methods
/// one tick at a time — both paths execute identical code, which is what
/// extends the determinism contract to the service layer.
struct FleetSimulator::RunState {
  /// One running job inside the fleet loop. Kept in a min-heap on finish
  /// time; a fault kill erases the entry outright (std::erase_if +
  /// make_heap — kills are rare), so the heap never holds stale jobs and
  /// the makespan never stretches to a killed job's original finish.
  struct Running {
    double finish_s = 0.0;
    std::size_t server = 0;
    std::uint64_t allocation_id = 0;
    std::size_t gpus = 0;  // for incremental free-GPU accounting on release

    bool operator>(const Running& other) const {
      return finish_s > other.finish_s;
    }
  };

  /// Fault-side view of a running job, kept only when the session arms
  /// the fault machinery: everything a kill needs to unwind the placement.
  struct LiveJob {
    std::size_t job_index = 0;
    std::size_t num_gpus = 0;  // allocation size; the mapping itself lives
                               // in the job's (still-alive) FleetRecord
    double finish_s = 0.0;
    std::size_t record_index = 0;  // into FleetResult::records
  };

  /// A killed job waiting out its backoff before re-entering the queue.
  /// Min-heap on (ready time, kill sequence) — the sequence breaks ties
  /// deterministically.
  struct Retry {
    double ready_s = 0.0;
    std::uint64_t seq = 0;
    std::size_t job_index = 0;

    bool operator>(const Retry& other) const {
      if (ready_s != other.ready_s) return ready_s > other.ready_s;
      return seq > other.seq;
    }
  };

  /// A submitted job waiting for its arrival time. Min-heap on
  /// (arrival time, submission sequence) — exactly the order run()'s
  /// stable sort produced, so incremental submission reproduces the batch
  /// arrival order when everything is submitted up front.
  struct Pending {
    double arrival_s = 0.0;
    std::uint64_t seq = 0;
    std::size_t job_index = 0;

    bool operator>(const Pending& other) const {
      if (arrival_s != other.arrival_s) return arrival_s > other.arrival_s;
      return seq > other.seq;
    }
  };

  /// Fleet metric handles, resolved once per session (null when the
  /// registry is off).
  struct MetricHandles {
    obs::Counter* ticks = nullptr;
    obs::Counter* placements = nullptr;
    obs::Counter* kills = nullptr;
    obs::Counter* requeues = nullptr;
    obs::Counter* dead_letters = nullptr;
    obs::Counter* rematches = nullptr;
    obs::Counter* forks = nullptr;
    obs::Counter* rejoins = nullptr;
    obs::Counter* rescues = nullptr;
    obs::Histogram* queue_wait_ms = nullptr;
  };

  FleetSimulator& fleet;
  StepOptions options;
  bool armed = false;

  // Observability handles: all null when no observer is configured (or
  // the corresponding ObsConfig flag is off), making every
  // instrumentation site below a branch on a null pointer.
  obs::TraceSink* trace = nullptr;
  obs::Registry* metrics = nullptr;
  obs::TelemetryLog* telemetry = nullptr;
  std::size_t telemetry_every = 0;
  MetricHandles fm;

  std::size_t max_server_gpus = 0;
  std::size_t fleet_total_gpus = 0;

  std::vector<workload::Job> jobs;  // submitted jobs, by session index
  std::vector<Pending> pending;     // min-heap (arrival_s, seq)
  std::uint64_t submit_seq = 0;

  std::vector<FaultEvent> events;  // sorted by time, ties keep list order
  std::size_t next_event = 0;

  // Caches live for the simulator's lifetime; their counters are
  // snapshotted at start() so each session reports per-run deltas even on
  // a reused FleetSimulator.
  std::vector<policy::MatchCacheStats> cache_baseline;
  FleetResult result;

  // Per-shard queues plus incremental free-GPU counts so shard routing is
  // O(shards) per admission instead of O(servers). shard_free counts only
  // non-draining members; the per-tick probe memo is per server and is
  // dropped whenever that server commits or releases an allocation.
  std::vector<std::deque<std::size_t>> queues;
  std::vector<ProbeMemo> memo;
  // Cross-tick memo support: each server's allocation-state fingerprint
  // (busy mask + working topology), recomputed lazily in probe_servers
  // when its dirty flag is set. Only that server's own probe reads or
  // writes its slot within a batch, so the lazy recompute is race-free
  // under the parallel fan-out.
  std::vector<std::uint64_t> state_fp;
  std::vector<char> state_dirty;
  std::vector<std::uint64_t> probe_count;
  std::vector<std::uint64_t> memo_hits;
  std::vector<std::size_t> server_free;
  std::vector<std::size_t> shard_free;
  // GPUs requested by jobs sitting in each shard's queue: routing ranks
  // shards by free capacity NET of this backlog, so a burst of same-time
  // arrivals spreads across shards instead of all chasing the shard that
  // looked freest before any of them was served.
  std::vector<long long> queued_gpus;
  // A shard needs re-scanning only after something it can see changed: a
  // job entered its queue, one of its servers committed/released/
  // drained/restored, or a rescue moved its work. A clean shard's scan
  // would replay the exact probes of its last failed scan (the memo makes
  // that cheap but not free — at 10k servers the redundant sweeps
  // dominate dispatch cost), so clean shards are skipped entirely; the
  // outcome is identical because nothing that scan reads has changed.
  std::vector<char> shard_dirty;
  std::vector<std::size_t> all_servers;

  // Fault machinery, populated only when the session arms it (see
  // `armed`): the per-server live-job list a kill unwinds through,
  // per-job retry counters and last-kill times, the backoff heap, and the
  // alive flags killed placements are compacted through at finish(). The
  // backoff jitter stream is derived from the master seed alone and drawn
  // in kill order (single-threaded, deterministic), so identical fault
  // schedules replay identical backoff delays at any thread count.
  //
  // Per-server live list, sorted ascending by allocation id without any
  // effort: each server's Mapa hands out strictly increasing ids, so
  // appending keeps placement order, and the list length is bounded by
  // the server's GPU count — linear find beats a node-allocating map.
  std::vector<std::vector<std::pair<std::uint64_t, LiveJob>>> live;
  std::vector<std::uint32_t> job_retries;
  std::vector<double> job_kill_time;
  std::vector<Retry> retry_heap;
  std::uint64_t retry_seq = 0;
  util::Rng backoff_rng;
  std::vector<char> record_alive;
  // Private-cache stats harvested at each archetype re-join (and at
  // finish() for still-degraded servers), attributed to the degraded
  // server.
  std::vector<std::uint64_t> fault_hits;
  std::vector<std::uint64_t> fault_misses;
  std::vector<std::uint64_t> fault_delta;
  // In-rotation server count per shard (routing avoids dead shards) and
  // fleet-wide crash/degrade counts for the capacity_degraded_ticks stat.
  std::vector<std::size_t> shard_alive;
  std::size_t num_crashed = 0;
  std::size_t num_degraded = 0;

  std::vector<Running> running;  // min-heap on finish_s (std::greater)
  double now = 0.0;
  std::uint64_t tick = 0;
  std::uint64_t finished_jobs = 0;

  /// Outbox of jobs the dispatch loop proved unplaceable on an idle
  /// fleet, populated instead of throwing when
  /// StepOptions::collect_unplaceable is set.
  std::vector<std::size_t> unplaceable;

  explicit RunState(FleetSimulator& f)
      : fleet(f), backoff_rng(f.config_.seed ^ 0x9e3779b97f4a7c15ULL) {}

  // Telemetry time-series: one fleet-state sample every
  // `telemetry_every` ticks (plus a final one at drain), written from
  // the single-threaded dispatch loop only.
  void sample_telemetry() {
    obs::TelemetrySample sample;
    sample.tick = tick;
    sample.sim_time_s = now;
    for (const std::deque<std::size_t>& q : queues) {
      sample.jobs_pending += q.size();
    }
    sample.jobs_running = running.size();
    sample.jobs_finished = finished_jobs;
    sample.dead_letters = result.dead_letters.size();
    sample.retry_backlog = retry_heap.size();
    for (const std::size_t f : server_free) sample.free_gpus += f;
    sample.total_gpus = fleet_total_gpus;
    sample.crashed_servers = num_crashed;
    sample.degraded_servers = num_degraded;
    for (std::size_t s = 0; s < fleet.servers_.size(); ++s) {
      if (fleet.servers_[s].fault_cache != nullptr) ++sample.forked_servers;
      sample.memo_hits += memo_hits[s];
      sample.memo_probes += memo_hits[s] + probe_count[s];
    }
    sample.shards.resize(fleet.shards_.size());
    for (std::size_t sh = 0; sh < fleet.shards_.size(); ++sh) {
      obs::ShardSample& ss = sample.shards[sh];
      ss.queue_depth = queues[sh].size();
      ss.queued_gpus =
          static_cast<std::uint64_t>(std::max(queued_gpus[sh], 0LL));
      ss.free_gpus = shard_free[sh];
      ss.live_servers = shard_alive[sh];
    }
    // Per-archetype cache state: one entry per distinct shared cache, in
    // fleet order of the archetype's primary server. Forked servers
    // probe a private fault cache, so they are not counted as attached.
    std::unordered_map<const policy::MatchCache*, std::size_t> archetype_of;
    for (std::size_t s = 0; s < fleet.servers_.size(); ++s) {
      const Server& server = fleet.servers_[s];
      if (server.cache == nullptr) continue;
      const auto [it, inserted] = archetype_of.try_emplace(
          server.cache.get(), sample.archetypes.size());
      if (inserted) {
        obs::ArchetypeSample as;
        as.name = server.archetype.graph().name();
        const policy::MatchCacheStats stats = server.cache->stats();
        as.cache_hits = stats.hits - cache_baseline[s].hits;
        as.cache_misses = stats.misses - cache_baseline[s].misses;
        as.cache_bypasses = stats.bypasses - cache_baseline[s].bypasses;
        sample.archetypes.push_back(std::move(as));
      }
      if (server.fault_cache == nullptr) {
        ++sample.archetypes[it->second].servers;
      }
    }
    telemetry->append(std::move(sample));
  }

  bool queues_empty() const {
    for (const std::deque<std::size_t>& q : queues) {
      if (!q.empty()) return false;
    }
    return true;
  }

  bool fully_idle() const {
    return queues_empty() && running.empty() && retry_heap.empty() &&
           pending.empty();
  }

  // A commit, release, or fault changed what probes of server s would
  // answer. Legacy memo: drop the bucket outright. Cross-tick memo: mark
  // the state fingerprint dirty — existing entries stay, keyed by the
  // OLD state, and simply stop matching; a server that returns to a
  // previously probed state replays its old answers with no matcher run.
  void touch_server_state(std::size_t s) {
    if (fleet.cross_tick_) {
      state_dirty[s] = 1;
    } else {
      memo[s].clear();
    }
  }

  // EVERY event that touches a server invalidates that server's probe
  // memo and re-dirties its shard, whatever the kind: a fault changes
  // the answers probes would give (lost GPU, cut link), and even
  // drain/restore must wake a clean shard so the skip never hides an
  // eligibility change. (Under the cross-tick memo a fault is stale by
  // construction — the fork's topology fingerprint enters the state
  // fingerprint — but the dirty flag must still be raised.)
  void invalidate_server(std::size_t s) {
    touch_server_state(s);
    shard_dirty[fleet.servers_[s].shard] = 1;
  }

  bool in_rotation(std::size_t s) const {
    return !fleet.servers_[s].draining && !fleet.servers_[s].crashed;
  }

  // Rotation transitions (drain/restore/crash) keep shard_free — which
  // counts in-rotation servers only — and the per-shard alive count in
  // sync.
  void update_rotation(std::size_t s, bool draining, bool crashed) {
    Server& server = fleet.servers_[s];
    const bool was = !server.draining && !server.crashed;
    if (crashed != server.crashed) num_crashed += crashed ? 1 : -1;
    server.draining = draining;
    server.crashed = crashed;
    const bool is = !server.draining && !server.crashed;
    if (was && !is) {
      shard_free[server.shard] -= server_free[s];
      --shard_alive[server.shard];
    } else if (!was && is) {
      shard_free[server.shard] += server_free[s];
      ++shard_alive[server.shard];
    }
    shard_dirty[server.shard] = 1;
  }

  static std::pair<graph::VertexId, graph::VertexId> link_key(
      graph::VertexId u, graph::VertexId v) {
    return {std::min(u, v), std::max(u, v)};
  }

  // Deterministic shard picker: among shards with at least one server
  // large enough for the job, route to the one with the most free
  // accelerators (draining servers count zero) net of the GPUs its queue
  // already owes, ties toward the lowest shard index. Capacity
  // eligibility is static (admission has already validated that some
  // server fits), so a routed job may still have to wait out a drain —
  // the rescue pass below covers pathological cases.
  // Shards whose every server is out of rotation (e.g. crashed away) are
  // avoided while any eligible shard still has a live server, so re-tried
  // and re-routed jobs never queue behind a dead shard; when every
  // eligible shard is dead the job queues on the best dead one and waits
  // for a restore. Fault-free this is the original picker bit for bit
  // (every shard is alive).
  void route(std::size_t job_index) {
    obs::Span span(trace, "fleet", "route");
    const workload::Job& job = jobs[job_index];
    std::size_t best = 0;
    long long best_slack = 0;
    bool found = false;
    bool found_alive = false;
    for (std::size_t sh = 0; sh < fleet.shards_.size(); ++sh) {
      if (fleet.shards_[sh].max_gpus < job.num_gpus) continue;
      const bool alive = shard_alive[sh] > 0;
      if (found_alive && !alive) continue;
      const long long slack =
          static_cast<long long>(shard_free[sh]) - queued_gpus[sh];
      if (!found || (alive && !found_alive) || slack > best_slack) {
        best = sh;
        best_slack = slack;
        found = true;
        found_alive = alive;
      }
    }
    queued_gpus[best] += static_cast<long long>(job.num_gpus);
    queues[best].push_back(job_index);
    shard_dirty[best] = 1;
    span.arg("job", job.id);
    span.arg("shard", best);
  }

  void admit_arrivals(double time) {
    while (!pending.empty() && pending.front().arrival_s <= time) {
      std::pop_heap(pending.begin(), pending.end(), std::greater<>{});
      const Pending next = pending.back();
      pending.pop_back();
      route(next.job_index);
    }
  }

  // Kill one running job: release its accelerators, erase its (not yet
  // surviving) record and heap entry, and either re-queue it with
  // exponential backoff or dead-letter it when the retry budget is spent.
  void kill_job(std::size_t s, std::uint64_t allocation_id) {
    const auto it =
        std::find_if(live[s].begin(), live[s].end(),
                     [&](const auto& e) { return e.first == allocation_id; });
    if (it == live[s].end()) return;  // already finished this instant
    obs::Span span(trace, "fleet", "kill");
    span.arg("server", s);
    const LiveJob lj = it->second;
    live[s].erase(it);
    fleet.servers_[s].mapa.release(allocation_id);
    const std::size_t gpus = lj.num_gpus;
    server_free[s] += gpus;
    if (in_rotation(s)) shard_free[fleet.servers_[s].shard] += gpus;
    std::erase_if(running, [&](const Running& r) {
      return r.server == s && r.allocation_id == allocation_id;
    });
    std::make_heap(running.begin(), running.end(), std::greater<>{});
    record_alive[lj.record_index] = 0;
    ServerResult& sr = result.servers[s];
    --sr.jobs_placed;  // only surviving placements count
    sr.busy_gpu_seconds -=
        static_cast<double>(gpus) * (lj.finish_s - now);  // unexecuted part
    ++result.resilience.jobs_killed;
    if (fm.kills != nullptr) fm.kills->inc();
    const std::uint32_t kills = ++job_retries[lj.job_index];
    span.arg("kills", kills);
    job_kill_time[lj.job_index] = now;
    if (kills > fleet.config_.max_retries) {
      result.dead_letters.push_back(
          DeadLetter{jobs[lj.job_index], kills, now});
      ++result.resilience.jobs_dead_lettered;
      if (fm.dead_letters != nullptr) fm.dead_letters->inc();
    } else {
      const double u = backoff_rng.uniform();
      const double delay =
          fleet.config_.backoff_base_s *
          std::pow(fleet.config_.backoff_factor,
                   static_cast<double>(kills - 1)) *
          (1.0 + fleet.config_.backoff_jitter * u);
      retry_heap.push_back(Retry{now + delay, retry_seq++, lj.job_index});
      std::push_heap(retry_heap.begin(), retry_heap.end(), std::greater<>{});
      ++result.resilience.jobs_requeued;
      if (fm.requeues != nullptr) fm.requeues->inc();
    }
  }

  void kill_all_on(std::size_t s) {
    std::vector<std::uint64_t> victims;  // ascending id = placement order
    victims.reserve(live[s].size());
    for (const auto& [id, lj] : live[s]) victims.push_back(id);
    for (const std::uint64_t id : victims) kill_job(s, id);
  }

  // Rebuild server s's working topology from its archetype plus fault
  // state. Degraded: a private fork — lost GPUs isolated, degraded links
  // scaled or removed — whose fingerprint differs from the archetype's
  // (bandwidth enters graph::topology_fingerprint), plus a private match
  // cache so the fork's wholesale invalidation can never evict the
  // healthy siblings' shared entries. Clean again: re-join the archetype
  // handle and shared cache, harvesting the private cache's stats.
  void fork_or_rejoin(std::size_t s, bool was_degraded) {
    Server& server = fleet.servers_[s];
    if (server.degraded()) {
      const graph::Graph& base = server.archetype.graph();
      graph::Graph forked(base.num_vertices(), base.name());
      for (std::size_t v = 0; v < base.num_vertices(); ++v) {
        forked.set_socket(static_cast<graph::VertexId>(v),
                          base.socket(static_cast<graph::VertexId>(v)));
      }
      for (const graph::Edge& e : base.edges()) {
        if (std::binary_search(server.lost_gpus.begin(),
                               server.lost_gpus.end(), e.u) ||
            std::binary_search(server.lost_gpus.begin(),
                               server.lost_gpus.end(), e.v)) {
          continue;
        }
        double factor = 1.0;
        const auto key = link_key(e.u, e.v);
        for (const auto& [link, f] : server.degraded_links) {
          if (link == key) {
            factor = f;
            break;
          }
        }
        if (factor == 0.0) continue;  // link down: the edge disappears
        forked.add_edge(e.u, e.v, e.type, e.bandwidth_gbps * factor);
      }
      server.mapa.rebind_topology(graph::TopologyHandle(std::move(forked)));
      ++result.resilience.topology_forks;
      if (fm.forks != nullptr) fm.forks->inc();
      if (trace != nullptr) trace->instant("fleet", "fork");
      if (!was_degraded) {
        ++num_degraded;
        if (server.cache != nullptr) {
          server.fault_cache =
              std::make_shared<policy::MatchCache>(fleet.config_.cache);
          server.mapa.policy().set_match_cache(server.fault_cache);
        }
      }
    } else if (was_degraded) {
      server.mapa.rebind_topology(server.archetype);
      ++result.resilience.archetype_rejoins;
      if (fm.rejoins != nullptr) fm.rejoins->inc();
      if (trace != nullptr) trace->instant("fleet", "rejoin");
      --num_degraded;
      if (server.fault_cache != nullptr) {
        const policy::MatchCacheStats stats = server.fault_cache->stats();
        fault_hits[s] += stats.hits;
        fault_misses[s] += stats.misses;
        fault_delta[s] += stats.delta_hits;
        server.fault_cache.reset();
        server.mapa.policy().set_match_cache(server.cache);
      }
    }
  }

  // After a link change, walk server s's running jobs: a mapping whose
  // pattern edges all survive is untouched (a factor > 0 degrade keeps
  // every edge, so it never disturbs running work); a broken mapping is
  // re-matched in place — the pattern re-enumerated over the job's own
  // held accelerators on the degraded topology — and only killed when no
  // embedding remains. A re-match keeps the job's accelerators, exec
  // time, and finish time; the record's mapping is updated (its placement
  // scores still describe the original decision).
  void recheck_running(std::size_t s) {
    Server& server = fleet.servers_[s];
    const graph::Graph& hw = server.mapa.hardware();
    std::vector<std::uint64_t> broken;
    for (auto& [id, lj] : live[s]) {
      std::vector<graph::VertexId>& mapped =
          result.records[lj.record_index].record.gpus;
      const graph::Graph pattern = jobs[lj.job_index].application_graph();
      bool intact = true;
      for (const graph::Edge& e : pattern.edges()) {
        if (!hw.has_edge(mapped[e.u], mapped[e.v])) {
          intact = false;
          break;
        }
      }
      if (intact) continue;
      std::vector<bool> outside(hw.num_vertices(), true);
      for (const graph::VertexId v : mapped) outside[v] = false;
      match::EnumerateOptions options;
      options.forbidden = graph::VertexMask::of_busy(outside);
      options.trace = trace;
      const std::vector<match::Match> matches =
          match::find_matches(pattern, hw, options, /*limit=*/1);
      if (!matches.empty()) {
        mapped = matches.front().mapping;
        ++result.resilience.jobs_rematched;
        if (fm.rematches != nullptr) fm.rematches->inc();
        if (trace != nullptr) trace->instant("fleet", "rematch");
      } else {
        broken.push_back(id);
      }
    }
    for (const std::uint64_t id : broken) kill_job(s, id);
  }

  // A crash that takes a shard's last in-rotation server re-routes the
  // shard's queued jobs immediately — while capacity exists elsewhere
  // they are rescued, not left to wait for the fleet-idle rescue pass.
  void reroute_if_dead(std::size_t sh) {
    if (shard_alive[sh] > 0 || queues[sh].empty()) return;
    std::deque<std::size_t> moved;
    moved.swap(queues[sh]);
    for (const std::size_t ji : moved) {
      queued_gpus[sh] -= static_cast<long long>(jobs[ji].num_gpus);
    }
    for (const std::size_t ji : moved) route(ji);
  }

  void admit_retries(double time) {
    while (!retry_heap.empty() && retry_heap.front().ready_s <= time) {
      std::pop_heap(retry_heap.begin(), retry_heap.end(), std::greater<>{});
      const Retry retry = retry_heap.back();
      retry_heap.pop_back();
      if (trace != nullptr) trace->instant("fleet", "retry");
      route(retry.job_index);
    }
  }

  // Static span names per fault kind, so a trace groups fault handling
  // by what happened rather than one opaque "event".
  static const char* event_span_name(FaultEvent::Kind kind) {
    switch (kind) {
      case FaultEvent::Kind::kDrain: return "drain";
      case FaultEvent::Kind::kRestore: return "restore";
      case FaultEvent::Kind::kServerCrash: return "server_crash";
      case FaultEvent::Kind::kGpuLoss: return "gpu_loss";
      case FaultEvent::Kind::kGpuRecover: return "gpu_recover";
      case FaultEvent::Kind::kLinkDegrade: return "link_degrade";
      case FaultEvent::Kind::kLinkRepair: return "link_repair";
    }
    return "fault";
  }

  void apply_events(double time) {
    while (next_event < events.size() && events[next_event].time_s <= time) {
      const FaultEvent& event = events[next_event];
      ++next_event;
      const std::size_t s = event.server;
      Server& server = fleet.servers_[s];
      obs::Span span(trace, "fault", event_span_name(event.kind));
      span.arg("server", s);
      span.arg("sim_time_s", event.time_s);
      switch (event.kind) {
        case FaultEvent::Kind::kDrain:
          update_rotation(s, true, server.crashed);
          break;
        case FaultEvent::Kind::kRestore:
          update_rotation(s, false, false);
          break;
        case FaultEvent::Kind::kServerCrash: {
          if (server.crashed) break;
          update_rotation(s, server.draining, true);
          kill_all_on(s);
          reroute_if_dead(server.shard);
          break;
        }
        case FaultEvent::Kind::kGpuLoss: {
          if (std::binary_search(server.lost_gpus.begin(),
                                 server.lost_gpus.end(), event.u)) {
            break;  // already lost
          }
          const bool was_degraded = server.degraded();
          // Kill the job holding the lost accelerator first (a pattern
          // cannot embed in its shrunken hold), so the unusable mark
          // below never overlaps a live allocation.
          if (server.mapa.busy()[event.u]) {
            for (const auto& [id, lj] : live[s]) {
              const std::vector<graph::VertexId>& mapped =
                  result.records[lj.record_index].record.gpus;
              if (std::find(mapped.begin(), mapped.end(), event.u) !=
                  mapped.end()) {
                kill_job(s, id);
                break;
              }
            }
          }
          server.lost_gpus.insert(
              std::lower_bound(server.lost_gpus.begin(),
                               server.lost_gpus.end(), event.u),
              event.u);
          server.mapa.set_unusable(event.u, true);
          --server_free[s];
          if (in_rotation(s)) --shard_free[server.shard];
          fork_or_rejoin(s, was_degraded);
          break;
        }
        case FaultEvent::Kind::kGpuRecover: {
          const auto found =
              std::lower_bound(server.lost_gpus.begin(),
                               server.lost_gpus.end(), event.u);
          if (found == server.lost_gpus.end() || *found != event.u) {
            break;  // not lost: no-op
          }
          const bool was_degraded = server.degraded();
          server.lost_gpus.erase(found);
          server.mapa.set_unusable(event.u, false);
          ++server_free[s];
          if (in_rotation(s)) ++shard_free[server.shard];
          fork_or_rejoin(s, was_degraded);
          break;
        }
        case FaultEvent::Kind::kLinkDegrade: {
          if (server.archetype.graph().edge(event.u, event.v) == nullptr) {
            break;  // no such link on this archetype: no-op
          }
          const auto key = link_key(event.u, event.v);
          const bool was_degraded = server.degraded();
          auto it = std::lower_bound(
              server.degraded_links.begin(), server.degraded_links.end(),
              key,
              [](const auto& entry, const auto& k) { return entry.first < k; });
          if (it != server.degraded_links.end() && it->first == key) {
            if (it->second == event.bandwidth_factor) break;  // no change
            it->second = event.bandwidth_factor;
          } else {
            server.degraded_links.insert(it,
                                         {key, event.bandwidth_factor});
          }
          fork_or_rejoin(s, was_degraded);
          recheck_running(s);
          break;
        }
        case FaultEvent::Kind::kLinkRepair: {
          const auto key = link_key(event.u, event.v);
          const bool was_degraded = server.degraded();
          auto it = std::lower_bound(
              server.degraded_links.begin(), server.degraded_links.end(),
              key,
              [](const auto& entry, const auto& k) { return entry.first < k; });
          if (it == server.degraded_links.end() || it->first != key) {
            break;  // link is healthy: no-op
          }
          server.degraded_links.erase(it);
          // Repair only adds edges/bandwidth back; running mappings that
          // embedded before still embed, so no re-check is needed.
          fork_or_rejoin(s, was_degraded);
          break;
        }
      }
      invalidate_server(s);
    }
  }

  // Commit a winning probe and record the placement. `queue_shard` and
  // `queue_pos` locate the job in the queue it currently sits in (its own
  // shard's, or — on a rescue — one foreign to the winning server).
  void place(std::size_t queue_shard, std::size_t queue_pos,
             ServerProbe& winner, const graph::Graph& pattern,
             double overhead_ms) {
    obs::Span span(trace, "fleet", "commit");
    span.arg("server", winner.server);
    std::deque<std::size_t>& queue = queues[queue_shard];
    Server& server = fleet.servers_[winner.server];
    const std::size_t job_index = queue[queue_pos];
    const workload::Job& job = jobs[job_index];
    span.arg("job", job.id);
    const core::Allocation allocation =
        server.mapa.commit(std::move(*winner.placement));

    sim::JobRecord record;
    record.job = job;
    record.gpus = allocation.gpus();
    record.queued_s = job.arrival_time_s;
    record.start_s = now;
    record.aggregated_bw = allocation.aggregated_bw();
    record.predicted_effbw = allocation.predicted_effbw();
    record.preserved_bw = allocation.preserved_bw();
    record.scheduling_overhead_ms = overhead_ms;

    match::Match m;
    m.mapping = allocation.gpus();
    record.measured_effbw = interconnect::measured_effective_bandwidth(
        pattern, server.mapa.hardware(), m, fleet.config_.sim.microbench);

    const workload::ExecModel model(job.profile());
    const double effbw = fleet.config_.sim.exec_uses_measured_effbw
                             ? record.measured_effbw
                             : record.predicted_effbw;
    record.exec_s = model.exec_time_s(job.num_gpus, effbw, job.iter_scale);
    record.finish_s = now + record.exec_s;

    ServerResult& sr = result.servers[winner.server];
    ++sr.jobs_placed;
    sr.busy_gpu_seconds +=
        static_cast<double>(record.gpus.size()) * record.exec_s;
    if (fm.placements != nullptr) fm.placements->inc();
    if (fm.queue_wait_ms != nullptr) {
      fm.queue_wait_ms->record(static_cast<std::uint64_t>(
          std::max(0.0, (now - record.queued_s) * 1000.0)));
    }

    const std::size_t gpus = record.gpus.size();
    server_free[winner.server] -= gpus;
    if (!server.draining) shard_free[server.shard] -= gpus;
    queued_gpus[queue_shard] -= static_cast<long long>(job.num_gpus);
    shard_dirty[queue_shard] = 1;
    shard_dirty[server.shard] = 1;
    touch_server_state(winner.server);  // busy mask changed

    const double finish_s = record.finish_s;
    running.push_back(
        Running{finish_s, winner.server, allocation.id(), gpus});
    std::push_heap(running.begin(), running.end(), std::greater<>{});
    // job_retries is a random 32 KB read per placement; every entry is
    // still zero until the first kill, so skip it while no fault has
    // fired (keeps the armed-but-idle path at fault-free speed).
    const std::uint32_t retries = (armed && result.resilience.jobs_killed > 0)
                                      ? job_retries[job_index]
                                      : 0;
    if (retries > 0) {
      // Simulated kill-to-re-placement latency (includes the backoff).
      result.resilience.replace_latency_s.push_back(
          now - job_kill_time[job_index]);
    }
    result.records.push_back(
        FleetRecord{std::move(record), winner.server, retries});
    if (armed) {
      record_alive.push_back(1);
      live[winner.server].emplace_back(
          allocation.id(),
          LiveJob{job_index, gpus, finish_s, result.records.size() - 1});
    }
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(queue_pos));
  }

  // Serve one shard: FIFO head first; optionally backfill a later job
  // past a blocked head (SimConfig.backfill, same window semantics as the
  // single-server engine). Places at most one job per call; probes only
  // the shard's own servers.
  bool serve_shard(std::size_t sh) {
    std::deque<std::size_t>& queue = queues[sh];
    if (queue.empty()) return false;
    obs::Span span(trace, "fleet", "serve_shard");
    span.arg("shard", sh);

    std::size_t queue_pos = 0;
    std::optional<std::size_t> chosen_probe;
    std::vector<ServerProbe> probes;
    double overhead_ms = 0.0;
    const std::size_t scan_limit =
        fleet.config_.sim.backfill
            ? std::min(queue.size(), fleet.config_.sim.backfill_window + 1)
            : std::size_t{1};
    graph::Graph pattern;
    for (; queue_pos < scan_limit; ++queue_pos) {
      const workload::Job& candidate = jobs[queue[queue_pos]];
      pattern = candidate.application_graph();
      const std::uint64_t key =
          fleet.memo_enabled_
              ? probe_key(pattern, candidate.bandwidth_sensitive)
              : 0;
      const auto wall_start = std::chrono::steady_clock::now();
      probes = fleet.probe_servers(fleet.shards_[sh].servers, pattern, key,
                                   candidate, *this);
      chosen_probe = fleet.selection_->select(probes);
      const auto wall_end = std::chrono::steady_clock::now();
      overhead_ms +=
          std::chrono::duration<double, std::milli>(wall_end - wall_start)
              .count();
      if (chosen_probe) break;
    }
    result.total_scheduling_ms += overhead_ms;
    if (!chosen_probe) return false;  // nothing fits here: wait or rescue

    place(sh, queue_pos, probes[*chosen_probe], pattern, overhead_ms);
    return true;
  }

  // Cross-shard rescue: only reached when the fleet is otherwise idle
  // (nothing running, arriving, or scheduled) yet some shard queue is
  // stuck — e.g. every sufficiently large server of the routed shard was
  // drained after routing. Re-probe each shard's servable candidates
  // against the whole fleet and place the first one that fits anywhere;
  // the scan respects the same head/backfill window as normal serving, so
  // rescue never places a job the in-shard scheduler would not have
  // reached. Returns false only when no server in the fleet fits any
  // servable candidate — the genuinely-unplaceable case.
  bool rescue() {
    obs::Span span(trace, "fleet", "rescue");
    for (std::size_t sh = 0; sh < fleet.shards_.size(); ++sh) {
      std::deque<std::size_t>& queue = queues[sh];
      if (queue.empty()) continue;
      const std::size_t scan_limit =
          fleet.config_.sim.backfill
              ? std::min(queue.size(), fleet.config_.sim.backfill_window + 1)
              : std::size_t{1};
      graph::Graph pattern;
      for (std::size_t pos = 0; pos < scan_limit; ++pos) {
        const workload::Job& candidate = jobs[queue[pos]];
        pattern = candidate.application_graph();
        const std::uint64_t key =
            fleet.memo_enabled_
                ? probe_key(pattern, candidate.bandwidth_sensitive)
                : 0;
        const auto wall_start = std::chrono::steady_clock::now();
        std::vector<ServerProbe> probes =
            fleet.probe_servers(all_servers, pattern, key, candidate, *this);
        const std::optional<std::size_t> chosen =
            fleet.selection_->select(probes);
        const auto wall_end = std::chrono::steady_clock::now();
        const double overhead_ms =
            std::chrono::duration<double, std::milli>(wall_end - wall_start)
                .count();
        result.total_scheduling_ms += overhead_ms;
        if (chosen) {
          if (fm.rescues != nullptr) fm.rescues->inc();
          place(sh, pos, probes[*chosen], pattern, overhead_ms);
          return true;
        }
      }
    }
    return false;
  }
};

FleetSimulator::FleetSimulator(std::vector<ServerSpec> specs,
                               ClusterConfig config)
    : config_(std::move(config)) {
  if (specs.empty()) {
    throw std::invalid_argument("FleetSimulator: empty fleet");
  }
  if (config_.shards == 0) {
    throw std::invalid_argument("FleetSimulator: zero dispatcher shards");
  }
  if (config_.threads > 1 && config_.policy.threads > 1) {
    throw std::invalid_argument(
        "FleetSimulator: fleet-level (ClusterConfig::threads) and "
        "policy-level (policy.threads) parallelism both requested; keep "
        "policy.threads at 1 and parallelize across servers instead");
  }
  selection_ = make_selection(config_.selection);

  // The master seed derives one policy sub-seed per server, in fleet
  // order, so stochastic policies are reproducible across thread counts.
  util::Rng seed_stream(config_.seed);
  servers_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ServerSpec& spec = specs[i];
    const std::uint64_t policy_seed = seed_stream.next_u64();
    std::string name = spec.name.empty()
                           ? spec.topology.name() + "-" + std::to_string(i)
                           : std::move(spec.name);
    Server server{std::move(name),
                  spec.policy,
                  core::Mapa(std::move(spec.topology),
                             policy::make_policy(spec.policy, config_.policy,
                                                 policy_seed)),
                  /*cache=*/nullptr,
                  /*cache_primary=*/false,
                  // Replaying a memoized probe for a stochastic policy
                  // would skip an RNG draw and shift its stream.
                  /*memoizable=*/spec.policy != "random",
                  /*shard=*/0,
                  /*draining=*/false,
                  /*crashed=*/false,
                  // Pristine shared handle, kept so a degraded server can
                  // re-join its archetype after its last fault is repaired.
                  /*archetype=*/{},
                  /*lost_gpus=*/{},
                  /*degraded_links=*/{},
                  /*fault_cache=*/nullptr};
    server.archetype = server.mapa.topology();
    servers_.push_back(std::move(server));
  }

  // One match cache per topology archetype: servers with the same
  // adjacency fingerprint — the identity MatchCache itself pins hardware
  // on — share one cache, so a fleet stamped from a handful of archetypes
  // holds a handful of caches instead of one per server. The cache key
  // folds the busy-mask fingerprint, so per-state entries stay correct on
  // every sharing server. The lowest-indexed server of each archetype is
  // the one that reports the shared cache's stats.
  if (config_.sim.use_match_cache) {
    std::unordered_map<std::uint64_t, std::shared_ptr<policy::MatchCache>>
        caches;
    for (Server& server : servers_) {
      auto [it, inserted] =
          caches.try_emplace(server.mapa.topology().fingerprint(), nullptr);
      if (inserted) {
        it->second = std::make_shared<policy::MatchCache>(config_.cache);
        server.cache_primary = true;
      }
      server.cache = it->second;
      server.mapa.policy().set_match_cache(server.cache);
    }
  }

  // Contiguous shard partition: shard i owns servers [i*n/S, (i+1)*n/S).
  // Every shard is non-empty because S is clamped to the server count.
  const std::size_t n = servers_.size();
  const std::size_t num_shards = std::min(config_.shards, n);
  shards_.resize(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    const std::size_t begin = i * n / num_shards;
    const std::size_t end = (i + 1) * n / num_shards;
    for (std::size_t s = begin; s < end; ++s) {
      servers_[s].shard = i;
      shards_[i].servers.push_back(s);
      shards_[i].max_gpus = std::max(shards_[i].max_gpus,
                                     servers_[s].mapa.topology().num_vertices());
    }
  }
  memo_enabled_ = config_.probe_memo.value_or(num_shards > 1);
  // Cross-tick survival defaults on whenever memoization itself is on;
  // setting cross_tick_memo = false keeps the legacy clear-on-commit
  // memo (the bench_incremental baseline).
  cross_tick_ = memo_enabled_ && config_.cross_tick_memo.value_or(true);

  // Metrics and examples key per-server aggregations by name; duplicates
  // would silently merge two servers' samples.
  std::unordered_set<std::string> names;
  names.reserve(servers_.size());
  for (const Server& server : servers_) {
    if (!names.insert(server.name).second) {
      throw std::invalid_argument("FleetSimulator: duplicate server name '" +
                                  server.name + "'");
    }
  }

  for (const FaultEvent& event : config_.events) {
    validate_event(event);
    if (event.kind != FaultEvent::Kind::kDrain &&
        event.kind != FaultEvent::Kind::kRestore) {
      // Any real fault kind arms the kill/re-queue machinery in the
      // dispatch loop; drain/restore-only schedules keep the fault-free
      // fast path.
      faults_armed_ = true;
    }
  }

  if (config_.threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.threads);
  }
}

// Out of line for the std::unique_ptr<RunState> member (incomplete in the
// header).
FleetSimulator::~FleetSimulator() = default;

void FleetSimulator::validate_event(const FaultEvent& event) const {
  if (event.server >= servers_.size()) {
    throw std::invalid_argument(
        "FleetSimulator: event names server " +
        std::to_string(event.server) + " but the fleet has " +
        std::to_string(servers_.size()) + " servers");
  }
  const std::size_t vertices =
      servers_[event.server].mapa.topology().num_vertices();
  switch (event.kind) {
    case FaultEvent::Kind::kGpuLoss:
    case FaultEvent::Kind::kGpuRecover:
      if (event.u >= vertices) {
        throw std::invalid_argument(
            "FleetSimulator: GPU fault names accelerator " +
            std::to_string(event.u) + " but server " +
            std::to_string(event.server) + " has " +
            std::to_string(vertices));
      }
      break;
    case FaultEvent::Kind::kLinkDegrade:
    case FaultEvent::Kind::kLinkRepair:
      if (event.u >= vertices || event.v >= vertices ||
          event.u == event.v) {
        throw std::invalid_argument(
            "FleetSimulator: link fault names a bad endpoint pair on "
            "server " +
            std::to_string(event.server));
      }
      if (event.kind == FaultEvent::Kind::kLinkDegrade &&
          (event.bandwidth_factor < 0.0 || event.bandwidth_factor >= 1.0)) {
        throw std::invalid_argument(
            "FleetSimulator: kLinkDegrade bandwidth_factor must be in "
            "[0, 1)");
      }
      break;
    case FaultEvent::Kind::kDrain:
    case FaultEvent::Kind::kRestore:
    case FaultEvent::Kind::kServerCrash:
      break;
  }
}

const graph::Graph& FleetSimulator::hardware(std::size_t server) const {
  if (server >= servers_.size()) {
    throw std::out_of_range("FleetSimulator::hardware: bad server index");
  }
  return servers_[server].mapa.hardware();
}

std::size_t FleetSimulator::shard_of(std::size_t server) const {
  if (server >= servers_.size()) {
    throw std::out_of_range("FleetSimulator::shard_of: bad server index");
  }
  return servers_[server].shard;
}

std::vector<ServerProbe> FleetSimulator::probe_servers(
    const std::vector<std::size_t>& candidates, const graph::Graph& pattern,
    std::uint64_t pattern_key, const workload::Job& job, RunState& rs) {
  std::vector<ProbeMemo>& memo = rs.memo;
  std::vector<std::uint64_t>& probe_count = rs.probe_count;
  std::vector<std::uint64_t>& memo_hits = rs.memo_hits;
  const std::vector<std::size_t>& server_free = rs.server_free;
  std::vector<std::size_t> eligible;
  eligible.reserve(candidates.size());
  for (const std::size_t s : candidates) {
    if (servers_[s].out_of_rotation()) continue;
    if (job.num_gpus > servers_[s].mapa.hardware().num_vertices()) continue;
    eligible.push_back(s);
  }

  // Probes touch only their own server's policy, cache, busy mask, and
  // memo bucket, so they are independent; results land at fixed indices
  // and the selection scans them in server order — thread count cannot
  // change the outcome. Memoized probes replay the policy's last answer
  // for this (pattern, sensitivity) against the server's unchanged busy
  // mask; the memo caches "does not fit" too.
  //
  // Cache accounting runs in probe mode: each probe fills a
  // CacheProbeTicket instead of counting hits/misses in arrival order,
  // and the tickets are committed below in ascending server order — the
  // only place probe-phase lookups mutate cache stats or LRU state — so
  // the hit/miss split is part of the determinism contract at any
  // thread count.
  obs::TraceSink* const trace = obs::trace_of(config_.observer);
  obs::Span fanout_span(trace, "fleet", "probe_fanout");
  fanout_span.arg("eligible", eligible.size());
  fanout_span.arg("job", job.id);
  std::vector<ServerProbe> probes;
  std::vector<policy::CacheProbeTicket> tickets(eligible.size());
  const auto probe_one = [&](std::size_t k) {
    const std::size_t index = eligible[k];
    Server& server = servers_[index];
    ServerProbe p;
    p.server = index;
    p.total_gpus = server.mapa.hardware().num_vertices();
    // The incremental free count the dispatch loop maintains on
    // commit/release — equal to mapa.free_accelerators() but O(1) instead
    // of an O(V) scan per probe, which dominates probe-all selections at
    // fleet scale.
    p.free_gpus = server_free[index];
    p.bandwidth_sensitive = job.bandwidth_sensitive;
    const bool memoize = memo_enabled_ && server.memoizable;
    bool replayed = false;
    std::uint64_t key = pattern_key;
    if (memoize && cross_tick_) {
      // Fold the server's allocation-state fingerprint into the memo key
      // so entries survive commits and releases: an entry for an old
      // state simply stops matching, and a server that RETURNS to a
      // previously probed state (steady-state churn) replays the old
      // answer. A fault fork changes the topology fingerprint, so fault
      // staleness is by construction. The lazy recompute below is
      // race-free: only this server's probe touches its slot in a batch.
      if (rs.state_dirty[index] != 0) {
        rs.state_fp[index] =
            graph::VertexMask::of_busy(server.mapa.busy()).fingerprint() ^
            server.mapa.topology().fingerprint();
        rs.state_dirty[index] = 0;
      }
      key ^= rs.state_fp[index] * 0x9e3779b97f4a7c15ULL;
    }
    if (memoize) {
      const auto it = memo[index].find(key);
      if (it != memo[index].end()) {
        p.placement = it->second;
        ++memo_hits[index];
        replayed = true;
      }
    }
    if (!replayed) {
      obs::Span probe_span(trace, "probe", "allocate");
      probe_span.arg("server", index);
      policy::AllocationRequest request;
      request.pattern = &pattern;
      request.bandwidth_sensitive = job.bandwidth_sensitive;
      request.cache_probe = &tickets[k];
      request.trace = trace;
      p.placement = server.mapa.policy().allocate(server.mapa.hardware(),
                                                  server.mapa.busy(), request);
      probe_span.arg("fits", p.placement.has_value());
      ++probe_count[index];
      if (memoize) {
        // Cross-tick buckets grow until their server's bound, then clear
        // wholesale — deterministic, since growth depends only on the
        // probe sequence, never on thread timing. The legacy memo is
        // cleared on every state change and needs no bound.
        if (cross_tick_ &&
            memo[index].size() >= config_.memo_entries_per_server) {
          memo[index].clear();
        }
        memo[index].emplace(key, p.placement);
      }
    }
    probes[k] = std::move(p);
  };
  if (!selection_->needs_all_probes()) {
    // First-fit never looks past the first fitting probe: run the matchers
    // sequentially in server order and stop at the first fit, so dispatch
    // cost stays O(1) probes instead of O(shard size).
    for (std::size_t k = 0; k < eligible.size(); ++k) {
      probes.resize(k + 1);
      probe_one(k);
      if (probes[k].fits()) break;
    }
  } else if (pool_ != nullptr && eligible.size() > 1) {
    probes.resize(eligible.size());
    pool_->parallel_for(eligible.size(), probe_one);
  } else {
    probes.resize(eligible.size());
    for (std::size_t k = 0; k < eligible.size(); ++k) probe_one(k);
  }
  // Sequential commit in ascending server order (eligible is ascending;
  // probes.size() <= eligible.size() when first-fit stopped early).
  // Untouched tickets (memo replays, non-caching policies) are kNone and
  // return without taking the cache lock.
  for (std::size_t k = 0; k < probes.size(); ++k) {
    if (tickets[k].kind() == policy::CacheProbeTicket::Kind::kNone) continue;
    Server& server = servers_[eligible[k]];
    policy::MatchCache* cache = server.fault_cache != nullptr
                                    ? server.fault_cache.get()
                                    : server.cache.get();
    if (cache != nullptr) cache->commit_probe(tickets[k]);
  }
  return probes;
}

void FleetSimulator::start(StepOptions options) {
  if (state_ != nullptr) {
    throw std::logic_error(
        "FleetSimulator::start: a session is already active (finish() it "
        "first)");
  }
  state_ = std::make_unique<RunState>(*this);
  RunState& st = *state_;
  st.options = options;
  st.armed = options.arm_faults || faults_armed_;

  st.trace = obs::trace_of(config_.observer);
  st.metrics = obs::registry_of(config_.observer);
  st.telemetry =
      config_.observer != nullptr ? config_.observer->telemetry() : nullptr;
  st.telemetry_every =
      config_.observer != nullptr
          ? config_.observer->config().telemetry_every_ticks
          : 0;
  if (st.metrics != nullptr) {
    st.fm.ticks = &st.metrics->counter("fleet.ticks");
    st.fm.placements = &st.metrics->counter("fleet.placements");
    st.fm.kills = &st.metrics->counter("fleet.kills");
    st.fm.requeues = &st.metrics->counter("fleet.requeues");
    st.fm.dead_letters = &st.metrics->counter("fleet.dead_letters");
    st.fm.rematches = &st.metrics->counter("fleet.rematches");
    st.fm.forks = &st.metrics->counter("fleet.topology_forks");
    st.fm.rejoins = &st.metrics->counter("fleet.archetype_rejoins");
    st.fm.rescues = &st.metrics->counter("fleet.rescues");
    st.fm.queue_wait_ms = &st.metrics->histogram("fleet.queue_wait_ms");
  }

  for (const Server& server : servers_) {
    const std::size_t gpus = server.mapa.hardware().num_vertices();
    st.max_server_gpus = std::max(st.max_server_gpus, gpus);
    st.fleet_total_gpus += gpus;
  }

  st.jobs.reserve(options.expected_jobs);
  st.pending.reserve(options.expected_jobs);
  st.job_retries.reserve(options.expected_jobs);
  st.job_kill_time.reserve(options.expected_jobs);

  st.events = config_.events;
  std::stable_sort(st.events.begin(), st.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time_s < b.time_s;
                   });

  // A reused simulator starts clean: rotation flags off, fault state
  // cleared, degraded servers re-joined to their pristine archetype (and
  // shared cache) before the first job arrives.
  for (Server& server : servers_) {
    const bool was_degraded = server.degraded();
    for (const graph::VertexId v : server.lost_gpus) {
      server.mapa.set_unusable(v, false);
    }
    server.lost_gpus.clear();
    server.degraded_links.clear();
    if (was_degraded) {
      server.mapa.rebind_topology(server.archetype);
      server.fault_cache.reset();
      if (server.cache != nullptr) {
        server.mapa.policy().set_match_cache(server.cache);
      }
    }
    server.draining = false;
    server.crashed = false;
  }

  st.cache_baseline.resize(servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (servers_[s].cache != nullptr) {
      st.cache_baseline[s] = servers_[s].cache->stats();
    }
  }

  st.result.selection = selection_->name();
  st.result.shards = shards_.size();
  st.result.records.reserve(options.expected_jobs);
  st.result.servers.resize(servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    ServerResult& sr = st.result.servers[s];
    sr.name = servers_[s].name;
    sr.topology = servers_[s].mapa.hardware().name();
    sr.policy = servers_[s].policy_name;
    sr.num_gpus = servers_[s].mapa.hardware().num_vertices();
    sr.shard = servers_[s].shard;
    sr.cache_primary = servers_[s].cache_primary;
  }

  st.queues.resize(shards_.size());
  st.memo.resize(servers_.size());
  st.state_fp.assign(servers_.size(), 0);
  st.state_dirty.assign(servers_.size(), 1);
  st.probe_count.assign(servers_.size(), 0);
  st.memo_hits.assign(servers_.size(), 0);
  st.server_free.assign(servers_.size(), 0);
  st.shard_free.assign(shards_.size(), 0);
  st.queued_gpus.assign(shards_.size(), 0);
  st.shard_dirty.assign(shards_.size(), 1);
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    st.server_free[s] = servers_[s].mapa.free_accelerators();
    st.shard_free[servers_[s].shard] += st.server_free[s];
  }
  st.all_servers.resize(servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) st.all_servers[s] = s;

  st.live.resize(servers_.size());
  st.fault_hits.assign(servers_.size(), 0);
  st.fault_misses.assign(servers_.size(), 0);
  st.fault_delta.assign(servers_.size(), 0);
  st.shard_alive.resize(shards_.size());
  for (std::size_t sh = 0; sh < shards_.size(); ++sh) {
    st.shard_alive[sh] = shards_[sh].servers.size();
  }

  // Time-0 events fire before the first admission, exactly like the
  // pre-loop apply_events of the batch path.
  st.apply_events(st.now);
}

std::size_t FleetSimulator::submit(workload::Job job) {
  if (state_ == nullptr) {
    throw std::logic_error(
        "FleetSimulator::submit: no active session (call start())");
  }
  RunState& st = *state_;
  if (job.num_gpus > st.max_server_gpus) {
    throw std::invalid_argument(
        "FleetSimulator::submit: job " + std::to_string(job.id) +
        " requests more GPUs than any server has");
  }
  const std::size_t index = st.jobs.size();
  st.jobs.push_back(std::move(job));
  st.job_retries.push_back(0);
  st.job_kill_time.push_back(0.0);
  st.pending.push_back(RunState::Pending{st.jobs[index].arrival_time_s,
                                         st.submit_seq++, index});
  std::push_heap(st.pending.begin(), st.pending.end(), std::greater<>{});
  return index;
}

bool FleetSimulator::step() {
  if (state_ == nullptr) {
    throw std::logic_error(
        "FleetSimulator::step: no active session (call start())");
  }
  RunState& st = *state_;
  // Events are pure wakeups for queued work: once the queues, running
  // set, retries, and pending arrivals are exhausted, remaining
  // drains/restores can't change anything and must not extend the
  // makespan.
  if (st.fully_idle()) return false;
  // Admissions the batch loop performed before its first iteration or at
  // the previous iteration's end. Re-draining at the current instant is
  // idempotent for the batch path (everything <= now is already in) and
  // is what admits work submit()/inject_fault() added between ticks.
  st.apply_events(st.now);
  st.admit_retries(st.now);
  st.admit_arrivals(st.now);

  obs::Span tick_span(st.trace, "fleet", "tick");
  tick_span.arg("tick", st.tick);
  tick_span.arg("sim_time_s", st.now);
  if (st.fm.ticks != nullptr) st.fm.ticks->inc();
  if (st.telemetry != nullptr && st.telemetry_every > 0 &&
      st.tick % st.telemetry_every == 0) {
    st.sample_telemetry();
  }
  ++st.tick;
  if (st.num_crashed > 0 || st.num_degraded > 0) {
    ++st.result.resilience.capacity_degraded_ticks;
  }
  // Serve the shards round-robin, one placement at a time, until no
  // shard can place anything more at the current instant. Shards whose
  // visible state hasn't changed since their last failed scan are
  // skipped (see shard_dirty above).
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t sh = 0; sh < shards_.size(); ++sh) {
      if (!st.shard_dirty[sh]) continue;
      if (st.serve_shard(sh)) {
        progressed = true;
      } else {
        st.shard_dirty[sh] = 0;
      }
    }
  }

  if (st.fully_idle()) return false;

  // Advance time to the next event: a completion, an arrival, a
  // scheduled fault/repair, or a retry coming off backoff.
  bool have_next = false;
  double next_time = 0.0;
  const auto consider = [&](double t) {
    if (!have_next || t < next_time) next_time = t;
    have_next = true;
  };
  if (!st.running.empty()) consider(st.running.front().finish_s);
  if (!st.pending.empty()) consider(st.pending.front().arrival_s);
  if (st.next_event < st.events.size()) {
    consider(st.events[st.next_event].time_s);
  }
  if (!st.retry_heap.empty()) consider(st.retry_heap.front().ready_s);
  if (!have_next) {
    if (shards_.size() > 1 && st.rescue()) return true;
    // Some queue is non-empty but nothing is running, arriving, or
    // scheduled, and (after the rescue pass, when sharded) no server in
    // the fleet fits. A fault-retried job stuck here was made
    // unplaceable by permanent faults: dead-letter it and move on. A
    // fresh job that never fit anywhere is either diverted to the
    // unplaceable outbox (collect_unplaceable — the daemon answers it as
    // a typed error) or keeps the hard batch error.
    bool dropped = false;
    for (std::size_t sh = 0; sh < shards_.size(); ++sh) {
      std::deque<std::size_t>& queue = st.queues[sh];
      for (std::size_t pos = 0; pos < queue.size();) {
        const std::size_t ji = queue[pos];
        if (st.armed && st.job_retries[ji] > 0) {
          st.result.dead_letters.push_back(
              DeadLetter{st.jobs[ji], st.job_retries[ji], st.now});
          ++st.result.resilience.jobs_dead_lettered;
          st.queued_gpus[sh] -= static_cast<long long>(st.jobs[ji].num_gpus);
          queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pos));
          dropped = true;
        } else {
          ++pos;
        }
      }
    }
    if (dropped) return true;
    if (st.options.collect_unplaceable) {
      // Every queue head was just proven unplaceable on an idle fleet
      // (in-shard scan and, when sharded, the full-fleet rescue both
      // failed): pop the heads into the outbox and keep serving the rest.
      bool popped = false;
      for (std::size_t sh = 0; sh < shards_.size(); ++sh) {
        std::deque<std::size_t>& queue = st.queues[sh];
        if (queue.empty()) continue;
        const std::size_t ji = queue.front();
        st.queued_gpus[sh] -= static_cast<long long>(st.jobs[ji].num_gpus);
        queue.pop_front();
        st.shard_dirty[sh] = 1;
        st.unplaceable.push_back(ji);
        popped = true;
      }
      if (popped) return true;
    }
    std::size_t stuck = 0;
    for (const std::deque<std::size_t>& q : st.queues) {
      if (!q.empty()) {
        stuck = q.front();
        break;
      }
    }
    throw std::runtime_error("FleetSimulator::run: job " +
                             std::to_string(st.jobs[stuck].id) +
                             " cannot be placed on any idle server");
  }
  st.now = std::max(st.now, next_time);

  while (!st.running.empty() && st.running.front().finish_s <= st.now) {
    const RunState::Running done = st.running.front();
    std::pop_heap(st.running.begin(), st.running.end(), std::greater<>{});
    st.running.pop_back();
    ++st.finished_jobs;
    servers_[done.server].mapa.release(done.allocation_id);
    if (st.armed) {
      std::erase_if(st.live[done.server], [&](const auto& e) {
        return e.first == done.allocation_id;
      });
    }
    st.server_free[done.server] += done.gpus;
    if (st.in_rotation(done.server)) {
      st.shard_free[servers_[done.server].shard] += done.gpus;
    }
    st.shard_dirty[servers_[done.server].shard] = 1;
    st.touch_server_state(done.server);  // busy mask changed
  }
  st.apply_events(st.now);
  st.admit_retries(st.now);
  st.admit_arrivals(st.now);
  return true;
}

bool FleetSimulator::idle() const {
  return state_ == nullptr || state_->fully_idle();
}

double FleetSimulator::sim_now() const {
  if (state_ == nullptr) {
    throw std::logic_error("FleetSimulator::sim_now: no active session");
  }
  return state_->now;
}

std::uint64_t FleetSimulator::ticks() const {
  if (state_ == nullptr) {
    throw std::logic_error("FleetSimulator::ticks: no active session");
  }
  return state_->tick;
}

const std::vector<workload::Job>& FleetSimulator::submitted_jobs() const {
  if (state_ == nullptr) {
    throw std::logic_error(
        "FleetSimulator::submitted_jobs: no active session");
  }
  return state_->jobs;
}

const FleetResult& FleetSimulator::partial_result() const {
  if (state_ == nullptr) {
    throw std::logic_error(
        "FleetSimulator::partial_result: no active session");
  }
  return state_->result;
}

std::vector<std::size_t> FleetSimulator::take_unplaceable() {
  if (state_ == nullptr) {
    throw std::logic_error(
        "FleetSimulator::take_unplaceable: no active session");
  }
  return std::exchange(state_->unplaceable, {});
}

FleetSimulator::ReleaseOutcome FleetSimulator::release(int job_id) {
  if (state_ == nullptr) {
    throw std::logic_error("FleetSimulator::release: no active session");
  }
  RunState& st = *state_;
  if (!st.armed) {
    throw std::logic_error(
        "FleetSimulator::release: session must start() with "
        "StepOptions::arm_faults (release unwinds through the fault "
        "machinery's live-job index)");
  }
  // Queued in some shard: drop it before it is ever served.
  for (std::size_t sh = 0; sh < st.queues.size(); ++sh) {
    std::deque<std::size_t>& queue = st.queues[sh];
    for (std::size_t pos = 0; pos < queue.size(); ++pos) {
      const std::size_t ji = queue[pos];
      if (st.jobs[ji].id != job_id) continue;
      st.queued_gpus[sh] -= static_cast<long long>(st.jobs[ji].num_gpus);
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pos));
      st.shard_dirty[sh] = 1;
      return ReleaseOutcome::kQueued;
    }
  }
  // Not yet admitted (future arrival) or waiting out a retry backoff.
  const auto pending_it = std::find_if(
      st.pending.begin(), st.pending.end(), [&](const RunState::Pending& p) {
        return st.jobs[p.job_index].id == job_id;
      });
  if (pending_it != st.pending.end()) {
    st.pending.erase(pending_it);
    std::make_heap(st.pending.begin(), st.pending.end(), std::greater<>{});
    return ReleaseOutcome::kQueued;
  }
  const auto retry_it = std::find_if(
      st.retry_heap.begin(), st.retry_heap.end(), [&](const RunState::Retry& r) {
        return st.jobs[r.job_index].id == job_id;
      });
  if (retry_it != st.retry_heap.end()) {
    st.retry_heap.erase(retry_it);
    std::make_heap(st.retry_heap.begin(), st.retry_heap.end(),
                   std::greater<>{});
    return ReleaseOutcome::kQueued;
  }
  // Running: free the accelerators NOW and truncate the record to the
  // elapsed execution time — an early release is a completed (shorter)
  // run, not a kill, so the record survives with adjusted times.
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    for (auto it = st.live[s].begin(); it != st.live[s].end(); ++it) {
      if (st.jobs[it->second.job_index].id != job_id) continue;
      const std::uint64_t allocation_id = it->first;
      const RunState::LiveJob lj = it->second;
      st.live[s].erase(it);
      servers_[s].mapa.release(allocation_id);
      st.server_free[s] += lj.num_gpus;
      if (st.in_rotation(s)) {
        st.shard_free[servers_[s].shard] += lj.num_gpus;
      }
      std::erase_if(st.running, [&](const RunState::Running& r) {
        return r.server == s && r.allocation_id == allocation_id;
      });
      std::make_heap(st.running.begin(), st.running.end(), std::greater<>{});
      st.shard_dirty[servers_[s].shard] = 1;
      st.touch_server_state(s);  // busy mask changed
      FleetRecord& fr = st.result.records[lj.record_index];
      ServerResult& sr = st.result.servers[s];
      sr.busy_gpu_seconds -=
          static_cast<double>(lj.num_gpus) * (lj.finish_s - st.now);
      fr.record.exec_s = std::max(0.0, st.now - fr.record.start_s);
      fr.record.finish_s = st.now;
      ++st.finished_jobs;
      return ReleaseOutcome::kRunning;
    }
  }
  return ReleaseOutcome::kNotFound;
}

void FleetSimulator::inject_fault(FaultEvent event) {
  if (state_ == nullptr) {
    throw std::logic_error(
        "FleetSimulator::inject_fault: no active session");
  }
  RunState& st = *state_;
  validate_event(event);
  const bool real_fault = event.kind != FaultEvent::Kind::kDrain &&
                          event.kind != FaultEvent::Kind::kRestore;
  if (real_fault && !st.armed) {
    throw std::logic_error(
        "FleetSimulator::inject_fault: fault kinds beyond drain/restore "
        "need StepOptions::arm_faults");
  }
  // Never into the past: the applied prefix of the event list is
  // immutable. upper_bound keeps same-time injections in insertion order
  // (the schedule's stable-sort tie rule).
  event.time_s = std::max(event.time_s, st.now);
  const auto begin =
      st.events.begin() + static_cast<std::ptrdiff_t>(st.next_event);
  const auto pos = std::upper_bound(
      begin, st.events.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) {
        return a.time_s < b.time_s;
      });
  st.events.insert(pos, event);
}

FleetResult FleetSimulator::finish() {
  if (state_ == nullptr) {
    throw std::logic_error(
        "FleetSimulator::finish: no active session (call start())");
  }
  RunState& st = *state_;
  FleetResult& result = st.result;

  // Compact away killed placements: only surviving runs are records.
  if (st.armed) {
    std::size_t write = 0;
    for (std::size_t i = 0; i < result.records.size(); ++i) {
      if (!st.record_alive[i]) continue;
      if (write != i) result.records[write] = std::move(result.records[i]);
      ++write;
    }
    result.records.resize(write);
  }

  result.makespan_s = st.now;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    ServerResult& sr = result.servers[s];
    if (result.makespan_s > 0.0 && sr.num_gpus > 0) {
      sr.utilization = sr.busy_gpu_seconds /
                       (static_cast<double>(sr.num_gpus) * result.makespan_s);
    }
    sr.probes = st.probe_count[s];
    sr.probe_memo_hits = st.memo_hits[s];
    // Shared caches report through the archetype's primary server only,
    // so pooled fleet totals never double-count one cache's deltas.
    if (servers_[s].cache != nullptr && servers_[s].cache_primary) {
      const policy::MatchCacheStats stats = servers_[s].cache->stats();
      sr.match_cache_hits = stats.hits - st.cache_baseline[s].hits;
      sr.match_cache_misses = stats.misses - st.cache_baseline[s].misses;
      sr.match_cache_delta_hits =
          stats.delta_hits - st.cache_baseline[s].delta_hits;
    }
    // A server still degraded at session end reports its private cache
    // here; re-joined servers were harvested at re-join time.
    if (servers_[s].fault_cache != nullptr) {
      const policy::MatchCacheStats stats = servers_[s].fault_cache->stats();
      st.fault_hits[s] += stats.hits;
      st.fault_misses[s] += stats.misses;
      st.fault_delta[s] += stats.delta_hits;
    }
    sr.match_cache_hits += st.fault_hits[s];
    sr.match_cache_misses += st.fault_misses[s];
    sr.match_cache_delta_hits += st.fault_delta[s];
  }
  if (st.telemetry != nullptr) st.sample_telemetry();
  if (st.metrics != nullptr) {
    std::uint64_t total_probes = 0;
    std::uint64_t total_memo_hits = 0;
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      total_probes += st.probe_count[s];
      total_memo_hits += st.memo_hits[s];
    }
    st.metrics->counter("fleet.probes").add(total_probes);
    st.metrics->counter("fleet.memo_hits").add(total_memo_hits);
    std::uint64_t total_delta_hits = 0;
    for (const ServerResult& sr : result.servers) {
      total_delta_hits += sr.match_cache_delta_hits;
    }
    st.metrics->counter("cache.delta_hits").add(total_delta_hits);
  }
  if (config_.observer != nullptr &&
      config_.observer->config().zero_wall_clock) {
    result.total_scheduling_ms = 0.0;
    for (FleetRecord& r : result.records) {
      r.record.scheduling_overhead_ms = 0.0;
    }
  }
  FleetResult out = std::move(result);
  state_.reset();
  return out;
}

FleetResult FleetSimulator::run(const std::vector<workload::Job>& jobs) {
  if (state_ != nullptr) {
    throw std::logic_error(
        "FleetSimulator::run: a tick-driven session is active");
  }
  std::size_t max_server_gpus = 0;
  for (const Server& server : servers_) {
    max_server_gpus =
        std::max(max_server_gpus, server.mapa.hardware().num_vertices());
  }
  for (const workload::Job& job : jobs) {
    if (job.num_gpus > max_server_gpus) {
      throw std::invalid_argument(
          "FleetSimulator::run: job " + std::to_string(job.id) +
          " requests more GPUs than any server has");
    }
  }

  StepOptions options;
  options.expected_jobs = jobs.size();
  start(options);
  try {
    // Submitting in list order gives (arrival time, list position) heap
    // keys — exactly the stable sort the batch dispatcher used.
    for (const workload::Job& job : jobs) submit(job);
    while (step()) {
    }
  } catch (...) {
    // Leave the simulator session-free (busy masks of still-running jobs
    // stay held, matching the old single-function run() on throw).
    state_.reset();
    throw;
  }
  return finish();
}

FleetResult run_fleet(std::vector<graph::Graph> topologies,
                      const std::string& policy_name,
                      const std::vector<workload::Job>& jobs,
                      const ClusterConfig& config) {
  std::vector<ServerSpec> specs;
  specs.reserve(topologies.size());
  for (graph::Graph& topology : topologies) {
    ServerSpec spec;
    spec.topology = graph::TopologyHandle(std::move(topology));
    spec.policy = policy_name;
    specs.push_back(std::move(spec));
  }
  FleetSimulator simulator(std::move(specs), config);
  return simulator.run(jobs);
}

std::vector<ServerSpec> archetype_fleet_specs(
    std::size_t servers, const std::vector<FleetArchetype>& archetypes) {
  if (servers == 0) {
    throw std::invalid_argument("archetype_fleet_specs: zero servers");
  }
  if (archetypes.empty()) {
    throw std::invalid_argument("archetype_fleet_specs: no archetypes");
  }
  std::size_t total_weight = 0;
  for (const FleetArchetype& arch : archetypes) {
    if (arch.weight == 0) {
      throw std::invalid_argument("archetype_fleet_specs: zero weight");
    }
    if (arch.topology.empty()) {
      throw std::invalid_argument("archetype_fleet_specs: empty topology");
    }
    total_weight += arch.weight;
  }

  // Smooth weighted round-robin: each step every archetype gains its
  // weight in credit, the richest archetype (ties toward the earliest) is
  // stamped and pays back the total. A 3:1 weighting therefore
  // interleaves A A A B A A A B ... instead of front-loading one
  // archetype, which keeps contiguous dispatcher shards representative of
  // the whole fleet mix.
  std::vector<long long> credit(archetypes.size(), 0);
  std::vector<std::size_t> stamped(archetypes.size(), 0);
  std::vector<ServerSpec> specs;
  specs.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i) {
    std::size_t pick = 0;
    for (std::size_t a = 0; a < archetypes.size(); ++a) {
      credit[a] += static_cast<long long>(archetypes[a].weight);
      if (credit[a] > credit[pick]) pick = a;
    }
    credit[pick] -= static_cast<long long>(total_weight);

    const FleetArchetype& arch = archetypes[pick];
    ServerSpec spec;
    spec.name = (arch.name.empty() ? arch.topology.name() : arch.name) + "-" +
                std::to_string(stamped[pick]++);
    spec.topology = arch.topology;  // shared handle, not a graph copy
    spec.policy = arch.policy;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<ServerSpec> rack_fleet_specs(std::size_t racks,
                                         std::size_t nodes_per_rack,
                                         const std::string& policy_name) {
  // One rack archetype built once and shared across every server: at
  // fleet scale the dense rack matrices are the dominant per-server
  // allocation, so the fleet holds one copy instead of `racks`.
  FleetArchetype arch;
  arch.name = "rack";
  arch.topology = graph::TopologyHandle(graph::dgx_rack(nodes_per_rack));
  arch.policy = policy_name;
  return archetype_fleet_specs(racks, {arch});
}

}  // namespace mapa::cluster
