#include "cluster/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <queue>
#include <stdexcept>
#include <utility>

#include "graph/topology.hpp"
#include "interconnect/microbench.hpp"
#include "policy/match_cache.hpp"
#include "util/rng.hpp"
#include "workload/exec_model.hpp"

namespace mapa::cluster {

namespace {

/// One running job inside the fleet loop.
struct Running {
  double finish_s = 0.0;
  std::size_t server = 0;
  std::uint64_t allocation_id = 0;

  bool operator>(const Running& other) const {
    return finish_s > other.finish_s;
  }
};

}  // namespace

double FleetResult::throughput_jobs_per_hour() const {
  if (makespan_s <= 0.0) return 0.0;
  return static_cast<double>(records.size()) / makespan_s * 3600.0;
}

const FleetRecord* FleetResult::find(int job_id) const {
  for (const FleetRecord& r : records) {
    if (r.record.job.id == job_id) return &r;
  }
  return nullptr;
}

FleetSimulator::FleetSimulator(std::vector<ServerSpec> specs,
                               ClusterConfig config)
    : config_(std::move(config)) {
  if (specs.empty()) {
    throw std::invalid_argument("FleetSimulator: empty fleet");
  }
  selection_ = make_selection(config_.selection);

  // The master seed derives one policy sub-seed per server, in fleet
  // order, so stochastic policies are reproducible across thread counts.
  util::Rng seed_stream(config_.seed);
  servers_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ServerSpec& spec = specs[i];
    const std::uint64_t policy_seed = seed_stream.next_u64();
    std::string name = spec.name.empty()
                           ? spec.topology.name() + "-" + std::to_string(i)
                           : std::move(spec.name);
    Server server{std::move(name), spec.policy,
                  core::Mapa(std::move(spec.topology),
                             policy::make_policy(spec.policy, config_.policy,
                                                 policy_seed)),
                  nullptr, false};
    if (config_.sim.use_match_cache) {
      server.cache = std::make_shared<policy::MatchCache>();
      server.mapa.policy().set_match_cache(server.cache);
    }
    servers_.push_back(std::move(server));
  }

  // Metrics and examples key per-server aggregations by name; duplicates
  // would silently merge two servers' samples.
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    for (std::size_t j = i + 1; j < servers_.size(); ++j) {
      if (servers_[i].name == servers_[j].name) {
        throw std::invalid_argument("FleetSimulator: duplicate server name '" +
                                    servers_[i].name + "'");
      }
    }
  }

  for (const ServerEvent& event : config_.events) {
    if (event.server >= servers_.size()) {
      throw std::invalid_argument(
          "FleetSimulator: event names server " +
          std::to_string(event.server) + " but the fleet has " +
          std::to_string(servers_.size()) + " servers");
    }
  }

  if (config_.threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.threads);
  }
}

const graph::Graph& FleetSimulator::hardware(std::size_t server) const {
  if (server >= servers_.size()) {
    throw std::out_of_range("FleetSimulator::hardware: bad server index");
  }
  return servers_[server].mapa.hardware();
}

std::vector<ServerProbe> FleetSimulator::probe(const graph::Graph& pattern,
                                               const workload::Job& job) {
  std::vector<std::size_t> eligible;
  eligible.reserve(servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (servers_[s].draining) continue;
    if (job.num_gpus > servers_[s].mapa.hardware().num_vertices()) continue;
    eligible.push_back(s);
  }

  // Probes touch only their own server's policy, cache, and busy mask, so
  // they are independent; results land at fixed indices and the selection
  // scans them in server order — thread count cannot change the outcome.
  std::vector<ServerProbe> probes;
  const auto probe_one = [&](std::size_t k) {
    Server& server = servers_[eligible[k]];
    ServerProbe p;
    p.server = eligible[k];
    p.total_gpus = server.mapa.hardware().num_vertices();
    p.free_gpus = server.mapa.free_accelerators();
    p.bandwidth_sensitive = job.bandwidth_sensitive;
    policy::AllocationRequest request;
    request.pattern = &pattern;
    request.bandwidth_sensitive = job.bandwidth_sensitive;
    p.placement = server.mapa.policy().allocate(server.mapa.hardware(),
                                                server.mapa.busy(), request);
    probes[k] = std::move(p);
  };
  if (!selection_->needs_all_probes()) {
    // First-fit never looks past the first fitting probe: run the matchers
    // sequentially in server order and stop at the first fit, so dispatch
    // cost stays O(1) probes instead of O(fleet size).
    for (std::size_t k = 0; k < eligible.size(); ++k) {
      probes.resize(k + 1);
      probe_one(k);
      if (probes[k].fits()) break;
    }
  } else if (pool_ != nullptr && eligible.size() > 1) {
    probes.resize(eligible.size());
    pool_->parallel_for(eligible.size(), probe_one);
  } else {
    probes.resize(eligible.size());
    for (std::size_t k = 0; k < eligible.size(); ++k) probe_one(k);
  }
  return probes;
}

FleetResult FleetSimulator::run(const std::vector<workload::Job>& jobs) {
  std::size_t max_server_gpus = 0;
  for (const Server& server : servers_) {
    max_server_gpus =
        std::max(max_server_gpus, server.mapa.hardware().num_vertices());
  }
  for (const workload::Job& job : jobs) {
    if (job.num_gpus > max_server_gpus) {
      throw std::invalid_argument(
          "FleetSimulator::run: job " + std::to_string(job.id) +
          " requests more GPUs than any server has");
    }
  }

  // Arrival order: by arrival time, stable by list position (FIFO) —
  // mirrors sim::Simulator so a 1-server fleet reproduces its schedule.
  std::vector<std::size_t> arrival_order(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) arrival_order[i] = i;
  std::stable_sort(arrival_order.begin(), arrival_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs[a].arrival_time_s < jobs[b].arrival_time_s;
                   });

  std::vector<ServerEvent> events = config_.events;
  std::stable_sort(events.begin(), events.end(),
                   [](const ServerEvent& a, const ServerEvent& b) {
                     return a.time_s < b.time_s;
                   });
  for (Server& server : servers_) server.draining = false;

  // Caches live for the simulator's lifetime; snapshot their counters so
  // this run reports per-run deltas even on a reused FleetSimulator.
  std::vector<policy::MatchCacheStats> cache_baseline(servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (servers_[s].cache != nullptr) {
      cache_baseline[s] = servers_[s].cache->stats();
    }
  }

  FleetResult result;
  result.selection = selection_->name();
  result.records.reserve(jobs.size());
  result.servers.resize(servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    ServerResult& sr = result.servers[s];
    sr.name = servers_[s].name;
    sr.topology = servers_[s].mapa.hardware().name();
    sr.policy = servers_[s].policy_name;
    sr.num_gpus = servers_[s].mapa.hardware().num_vertices();
  }

  std::deque<std::size_t> queue;  // indices into `jobs`
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running;
  std::size_t next_arrival = 0;
  std::size_t next_event = 0;
  double now = 0.0;

  const auto admit_arrivals = [&](double time) {
    while (next_arrival < arrival_order.size() &&
           jobs[arrival_order[next_arrival]].arrival_time_s <= time) {
      queue.push_back(arrival_order[next_arrival]);
      ++next_arrival;
    }
  };
  const auto apply_events = [&](double time) {
    while (next_event < events.size() && events[next_event].time_s <= time) {
      const ServerEvent& event = events[next_event];
      servers_[event.server].draining =
          event.kind == ServerEvent::Kind::kDrain;
      ++next_event;
    }
  };
  apply_events(now);
  admit_arrivals(now);

  // Events are pure wakeups for queued work: once the queue, running set,
  // and arrivals are exhausted, remaining drains/restores can't change
  // anything and must not extend the makespan.
  while (!queue.empty() || !running.empty() ||
         next_arrival < arrival_order.size()) {
    // Serve the queue: FIFO head first; optionally backfill a later job
    // past a blocked head (SimConfig.backfill, same window semantics as
    // the single-server engine).
    bool progressed = true;
    while (progressed && !queue.empty()) {
      progressed = false;

      std::size_t queue_pos = 0;
      std::optional<std::size_t> chosen_probe;
      std::vector<ServerProbe> probes;
      double overhead_ms = 0.0;
      const std::size_t scan_limit =
          config_.sim.backfill
              ? std::min(queue.size(), config_.sim.backfill_window + 1)
              : std::size_t{1};
      graph::Graph pattern;
      for (; queue_pos < scan_limit; ++queue_pos) {
        const workload::Job& candidate = jobs[queue[queue_pos]];
        pattern = candidate.application_graph();
        const auto wall_start = std::chrono::steady_clock::now();
        probes = probe(pattern, candidate);
        chosen_probe = selection_->select(probes);
        const auto wall_end = std::chrono::steady_clock::now();
        overhead_ms +=
            std::chrono::duration<double, std::milli>(wall_end - wall_start)
                .count();
        if (chosen_probe) break;
      }
      result.total_scheduling_ms += overhead_ms;
      if (!chosen_probe) break;  // nothing fits anywhere: wait for an event

      ServerProbe& winner = probes[*chosen_probe];
      Server& server = servers_[winner.server];
      const workload::Job& job = jobs[queue[queue_pos]];
      const core::Allocation allocation =
          server.mapa.commit(std::move(*winner.placement));

      sim::JobRecord record;
      record.job = job;
      record.gpus = allocation.gpus();
      record.queued_s = job.arrival_time_s;
      record.start_s = now;
      record.aggregated_bw = allocation.aggregated_bw();
      record.predicted_effbw = allocation.predicted_effbw();
      record.preserved_bw = allocation.preserved_bw();
      record.scheduling_overhead_ms = overhead_ms;

      match::Match m;
      m.mapping = allocation.gpus();
      record.measured_effbw = interconnect::measured_effective_bandwidth(
          pattern, server.mapa.hardware(), m, config_.sim.microbench);

      const workload::ExecModel model(job.profile());
      const double effbw = config_.sim.exec_uses_measured_effbw
                               ? record.measured_effbw
                               : record.predicted_effbw;
      record.exec_s = model.exec_time_s(job.num_gpus, effbw, job.iter_scale);
      record.finish_s = now + record.exec_s;

      ServerResult& sr = result.servers[winner.server];
      ++sr.jobs_placed;
      sr.busy_gpu_seconds +=
          static_cast<double>(record.gpus.size()) * record.exec_s;

      running.push(Running{record.finish_s, winner.server, allocation.id()});
      result.records.push_back(FleetRecord{std::move(record), winner.server});
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(queue_pos));
      progressed = true;
    }

    if (running.empty() && queue.empty() &&
        next_arrival >= arrival_order.size()) {
      break;
    }

    // Advance time to the next event: a completion, an arrival, or a
    // scheduled drain/restore.
    bool have_next = false;
    double next_time = 0.0;
    const auto consider = [&](double t) {
      if (!have_next || t < next_time) next_time = t;
      have_next = true;
    };
    if (!running.empty()) consider(running.top().finish_s);
    if (next_arrival < arrival_order.size()) {
      consider(jobs[arrival_order[next_arrival]].arrival_time_s);
    }
    if (next_event < events.size()) consider(events[next_event].time_s);
    if (!have_next) {
      // Queue non-empty but nothing running, arriving, or scheduled: the
      // head can never be placed (no structural match on any idle
      // eligible server, or the whole fleet is drained for good).
      throw std::runtime_error(
          "FleetSimulator::run: job " +
          std::to_string(jobs[queue.front()].id) +
          " cannot be placed on any idle server");
    }
    now = std::max(now, next_time);

    while (!running.empty() && running.top().finish_s <= now) {
      servers_[running.top().server].mapa.release(running.top().allocation_id);
      running.pop();
    }
    apply_events(now);
    admit_arrivals(now);
  }

  result.makespan_s = now;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    ServerResult& sr = result.servers[s];
    if (result.makespan_s > 0.0 && sr.num_gpus > 0) {
      sr.utilization = sr.busy_gpu_seconds /
                       (static_cast<double>(sr.num_gpus) * result.makespan_s);
    }
    if (servers_[s].cache != nullptr) {
      const policy::MatchCacheStats stats = servers_[s].cache->stats();
      sr.match_cache_hits = stats.hits - cache_baseline[s].hits;
      sr.match_cache_misses = stats.misses - cache_baseline[s].misses;
    }
  }
  return result;
}

FleetResult run_fleet(std::vector<graph::Graph> topologies,
                      const std::string& policy_name,
                      const std::vector<workload::Job>& jobs,
                      const ClusterConfig& config) {
  std::vector<ServerSpec> specs;
  specs.reserve(topologies.size());
  for (graph::Graph& topology : topologies) {
    ServerSpec spec;
    spec.topology = std::move(topology);
    spec.policy = policy_name;
    specs.push_back(std::move(spec));
  }
  FleetSimulator simulator(std::move(specs), config);
  return simulator.run(jobs);
}

std::vector<ServerSpec> rack_fleet_specs(std::size_t racks,
                                         std::size_t nodes_per_rack,
                                         const std::string& policy_name) {
  std::vector<ServerSpec> specs;
  specs.reserve(racks);
  for (std::size_t r = 0; r < racks; ++r) {
    ServerSpec spec;
    spec.name = "rack-" + std::to_string(r);
    spec.topology = graph::dgx_rack(nodes_per_rack);
    spec.policy = policy_name;
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace mapa::cluster
