#pragma once
// Job descriptor — one row of the paper's job file (Fig. 14):
// "ID, NumGPUs, Topology, BW Sensitive" plus the workload behind it.

#include <cstddef>
#include <string>

#include "graph/graph.hpp"
#include "graph/patterns.hpp"
#include "workload/profile.hpp"

namespace mapa::workload {

struct Job {
  int id = 0;
  std::string workload;  // profile name ("vgg-16", ...)
  std::size_t num_gpus = 1;
  graph::PatternKind pattern = graph::PatternKind::kRing;
  bool bandwidth_sensitive = false;
  double arrival_time_s = 0.0;  // dispatcher release time (0 = immediately)
  double iter_scale = 1.0;      // iterations relative to the reference run

  /// Build this job's application pattern graph (kSingle when 1 GPU).
  graph::Graph application_graph() const;

  /// The workload profile; throws when `workload` is unknown.
  const WorkloadProfile& profile() const;

  bool operator==(const Job&) const = default;
};

}  // namespace mapa::workload
