#include "workload/profile.hpp"

#include <stdexcept>

namespace mapa::workload {

const std::vector<WorkloadProfile>& all_workloads() {
  // Communication calls per iteration are the paper's Fig. 5b table values;
  // median transfer sizes parameterize the Fig. 5a CDFs (AlexNet / VGG /
  // Inception / CaffeNet average >= 1e5 bytes, GoogleNet / ResNet smaller).
  // ref_exec_time_s and pcie_slowdown are calibrated so Fig. 2b's link
  // speedups and Fig. 13's execution-time ranges are reproduced.
  static const std::vector<WorkloadProfile> workloads = {
      {"vgg-16", true, 250.0, 3.00,
       {160001.0, 1.2e6, 1.4}, graph::PatternKind::kRing, 7000},
      {"alexnet", true, 180.0, 2.00,
       {80001.0, 9.0e5, 1.6}, graph::PatternKind::kRing, 7000},
      {"resnet-50", true, 300.0, 1.50,
       {1600001.0, 4.0e4, 1.2}, graph::PatternKind::kRing, 7000},
      {"inception-v3", true, 330.0, 1.40,
       {2830001.0, 1.6e5, 1.3}, graph::PatternKind::kRing, 7000},
      {"caffenet", false, 640.0, 1.05,
       {84936.0, 2.0e6, 1.5}, graph::PatternKind::kRing, 7000},
      {"googlenet", false, 620.0, 1.08,
       {640001.0, 2.5e4, 1.1}, graph::PatternKind::kRing, 7000},
      {"cusimann", false, 700.0, 1.01,
       {101.0, 8.0e3, 0.8}, graph::PatternKind::kStar, 1000},
      {"gmm", false, 650.0, 1.01,
       {301.0, 1.0e4, 0.8}, graph::PatternKind::kStar, 1000},
      {"jacobi", false, 600.0, 1.03,
       {2001.0, 6.0e4, 0.7}, graph::PatternKind::kChain, 1000},
  };
  return workloads;
}

std::vector<WorkloadProfile> sensitive_workloads() {
  std::vector<WorkloadProfile> out;
  for (const WorkloadProfile& w : all_workloads()) {
    if (w.bandwidth_sensitive) out.push_back(w);
  }
  return out;
}

std::vector<WorkloadProfile> insensitive_workloads() {
  std::vector<WorkloadProfile> out;
  for (const WorkloadProfile& w : all_workloads()) {
    if (!w.bandwidth_sensitive) out.push_back(w);
  }
  return out;
}

const WorkloadProfile* find_workload(const std::string& name) {
  for (const WorkloadProfile& w : all_workloads()) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

const WorkloadProfile& workload_by_name(const std::string& name) {
  const WorkloadProfile* w = find_workload(name);
  if (w == nullptr) {
    throw std::invalid_argument("workload_by_name: unknown workload '" +
                                name + "'");
  }
  return *w;
}

}  // namespace mapa::workload
