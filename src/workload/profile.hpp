#pragma once
// Workload catalog: the six Caffe CNN training jobs plus the three
// non-neural multi-GPU workloads the paper evaluates (§4, "Workloads"),
// with their communication properties (Fig. 5) and bandwidth-sensitivity
// labels (Fig. 5b and §4's classification of Cusimann/GMM/Jacobi).
//
// Per-workload calibration values stand in for the paper's real-machine
// measurements (see DESIGN.md): `ref_exec_time_s` is the execution time of
// a 2-GPU run on a double-NVLink allocation, and `pcie_slowdown` is how
// much slower the same run is on a PCIe-only allocation — the Fig. 2b
// speedups read in reverse.

#include <cstddef>
#include <string>
#include <vector>

#include "graph/patterns.hpp"

namespace mapa::workload {

/// Lognormal model of per-call transfer sizes (Fig. 5a CDFs).
struct CommProfile {
  double calls_per_iter = 0.0;    // collective calls per GPU per iteration
  double median_bytes = 0.0;      // lognormal median (exp(mu))
  double sigma_log = 1.0;         // lognormal sigma (natural log scale)
};

struct WorkloadProfile {
  std::string name;
  bool bandwidth_sensitive = false;
  double ref_exec_time_s = 0.0;   // 2-GPU double-NVLink reference time
  double pcie_slowdown = 1.0;     // T(2-GPU PCIe) / T(2-GPU double NVLink)
  CommProfile comm;
  graph::PatternKind pattern = graph::PatternKind::kRing;
  std::size_t ref_iterations = 7000;  // iterations behind ref_exec_time_s
};

/// The nine paper workloads, in the order of Fig. 13's panels
/// (sensitive CNNs, insensitive CNNs, then the non-NN workloads).
const std::vector<WorkloadProfile>& all_workloads();

/// Only the bandwidth-sensitive / -insensitive subsets.
std::vector<WorkloadProfile> sensitive_workloads();
std::vector<WorkloadProfile> insensitive_workloads();

/// Lookup by name; throws std::invalid_argument when unknown.
const WorkloadProfile& workload_by_name(const std::string& name);

/// Lookup by name; nullptr when unknown.
const WorkloadProfile* find_workload(const std::string& name);

}  // namespace mapa::workload
