#pragma once
// Random job-file generation following the paper's methodology (§4, "Jobs
// configuration"): a uniform mix of the workloads, each requesting a
// uniformly distributed number of GPUs in [min_gpus, max_gpus] (the paper
// uses 1..5, citing Philly's observation that multi-GPU request sizes are
// roughly uniform).

#include <cstdint>
#include <vector>

#include "workload/job.hpp"

namespace mapa::workload {

struct GeneratorConfig {
  std::size_t num_jobs = 300;   // paper's job-file size
  std::size_t min_gpus = 1;
  std::size_t max_gpus = 5;
  /// Restrict the mix; empty = all nine paper workloads.
  std::vector<std::string> workload_names;
  /// Mean inter-arrival gap in seconds; 0 = all jobs arrive at time 0
  /// (the paper's setup: the whole file is queued up front).
  double mean_interarrival_s = 0.0;
  std::uint64_t seed = 42;
};

/// Deterministic (seeded) job list per the configuration.
std::vector<Job> generate_jobs(const GeneratorConfig& config);

/// Fleet-scale trace preset for the cluster/ benches and examples: a
/// Poisson arrival process at `arrival_rate_per_s` plus a heavy-tailed
/// duration mix — each job's `iter_scale` is drawn from a bounded
/// Pareto(`duration_alpha`) on [1, `duration_tail_cap`], so most jobs are
/// short while a fat tail of stragglers keeps servers occupied across
/// many arrivals (the imbalance fleet schedulers exist to absorb).
struct FleetTraceConfig {
  std::size_t num_jobs = 1000;
  /// Poisson arrival rate (jobs per second of simulated time); the mean
  /// inter-arrival gap is 1 / rate. Must be > 0.
  double arrival_rate_per_s = 0.05;
  std::size_t min_gpus = 1;
  std::size_t max_gpus = 8;
  /// Pareto shape for the iter_scale duration mix; smaller = heavier tail.
  double duration_alpha = 1.5;
  /// Upper bound on iter_scale (truncates the Pareto tail). Must be >= 1.
  double duration_tail_cap = 50.0;
  /// Restrict the mix; empty = all nine paper workloads.
  std::vector<std::string> workload_names;
  /// Single seed for the whole trace; pair it with ClusterConfig::seed for
  /// a fully reproducible fleet experiment.
  std::uint64_t seed = 42;
};

/// Deterministic (seeded) fleet-scale job list per the configuration.
std::vector<Job> generate_fleet_trace(const FleetTraceConfig& config);

/// Wide-topology preset of FleetTraceConfig, tuned for fleets whose
/// servers are multi-node racks (graph::dgx_rack / graph::summit_rack, on
/// the >64-vertex wide matching path): a denser arrival stream and a job
/// mix up to `max_gpus` = 12 accelerators, so placements regularly span
/// node boundaries and the busy mask exercises several mask words. Pass
/// the returned config to generate_fleet_trace (tweak fields first as
/// needed); pair `seed` with cluster::ClusterConfig::seed as usual.
FleetTraceConfig rack_trace_config(std::size_t num_jobs = 1000,
                                   std::uint64_t seed = 42);

/// Fleet-scale preset of FleetTraceConfig for 1k/10k-server sweeps (the
/// sharded-dispatcher benches and tests): `servers * jobs_per_server`
/// jobs whose Poisson arrival rate scales linearly with the fleet size,
/// so per-server pressure — and thus queue depth and placement mix —
/// stays comparable as the fleet grows from tens to tens of thousands of
/// servers instead of the stream going idle. GPU range and duration tail
/// match the FleetTraceConfig defaults; tweak the returned config before
/// passing it to generate_fleet_trace, and pair `seed` with
/// cluster::ClusterConfig::seed as usual. Throws via generate_fleet_trace
/// when `servers` or `jobs_per_server` is 0.
FleetTraceConfig fleet_scale_trace_config(std::size_t servers,
                                          std::size_t jobs_per_server = 10,
                                          std::uint64_t seed = 42);

/// Parameters of a seeded chaos (fault-injection) schedule. This is the
/// workload-side half of the resilience story: it only describes the
/// fault process — cluster::generate_fault_schedule turns it into a
/// concrete cluster::FaultEvent list against a server list (the cluster
/// layer knows topologies; this layer must not).
///
/// Faults arrive as a Poisson process at fleet-wide rate 1 / mtbf_s over
/// [0, horizon_s); each fault picks a uniform server, a kind by weight,
/// and schedules its own repair an Exp(mttr_s) later. All draws come from
/// one util::Rng stream seeded by `seed`, so a schedule is a pure
/// function of this struct plus the server list.
struct ChaosTraceConfig {
  /// Mean time between fault injections across the whole fleet, seconds
  /// of simulated time. Must be > 0.
  double mtbf_s = 500.0;
  /// Mean time from a fault to its paired repair/restore. Must be > 0.
  double mttr_s = 200.0;
  /// Faults are injected in [0, horizon_s); repairs may land later.
  double horizon_s = 10'000.0;
  /// Relative weights of the fault kinds (need not sum to anything);
  /// a weight of 0 disables that kind. At least one must be > 0.
  double server_crash_weight = 1.0;
  double gpu_loss_weight = 2.0;
  double link_degrade_weight = 2.0;
  /// Chance a link fault severs the link outright (bandwidth factor 0);
  /// otherwise the factor is drawn uniform in [0.25, 0.75]. In [0, 1].
  double link_down_chance = 0.5;
  std::uint64_t seed = 42;
};

/// Fleet-sized chaos preset: per-server MTBF is held at
/// `per_server_mtbf_s` (default ~8 simulated hours), so the fleet-wide
/// fault rate scales linearly with `servers` — a 1k-server fleet sees
/// ~30x the faults of a 32-server one over the same horizon, the way a
/// real fleet does. Tweak the returned config before handing it to
/// cluster::generate_fault_schedule; pair `seed` with
/// cluster::ClusterConfig::seed as usual. Throws on zero servers.
ChaosTraceConfig chaos_trace_config(std::size_t servers,
                                    double per_server_mtbf_s = 30'000.0,
                                    std::uint64_t seed = 42);

}  // namespace mapa::workload
