#pragma once
// Random job-file generation following the paper's methodology (§4, "Jobs
// configuration"): a uniform mix of the workloads, each requesting a
// uniformly distributed number of GPUs in [min_gpus, max_gpus] (the paper
// uses 1..5, citing Philly's observation that multi-GPU request sizes are
// roughly uniform).

#include <cstdint>
#include <vector>

#include "workload/job.hpp"

namespace mapa::workload {

struct GeneratorConfig {
  std::size_t num_jobs = 300;   // paper's job-file size
  std::size_t min_gpus = 1;
  std::size_t max_gpus = 5;
  /// Restrict the mix; empty = all nine paper workloads.
  std::vector<std::string> workload_names;
  /// Mean inter-arrival gap in seconds; 0 = all jobs arrive at time 0
  /// (the paper's setup: the whole file is queued up front).
  double mean_interarrival_s = 0.0;
  std::uint64_t seed = 42;
};

/// Deterministic (seeded) job list per the configuration.
std::vector<Job> generate_jobs(const GeneratorConfig& config);

/// Fleet-scale trace preset for the cluster/ benches and examples: a
/// Poisson arrival process at `arrival_rate_per_s` plus a heavy-tailed
/// duration mix — each job's `iter_scale` is drawn from a bounded
/// Pareto(`duration_alpha`) on [1, `duration_tail_cap`], so most jobs are
/// short while a fat tail of stragglers keeps servers occupied across
/// many arrivals (the imbalance fleet schedulers exist to absorb).
struct FleetTraceConfig {
  std::size_t num_jobs = 1000;
  /// Poisson arrival rate (jobs per second of simulated time); the mean
  /// inter-arrival gap is 1 / rate. Must be > 0.
  double arrival_rate_per_s = 0.05;
  std::size_t min_gpus = 1;
  std::size_t max_gpus = 8;
  /// Pareto shape for the iter_scale duration mix; smaller = heavier tail.
  double duration_alpha = 1.5;
  /// Upper bound on iter_scale (truncates the Pareto tail). Must be >= 1.
  double duration_tail_cap = 50.0;
  /// Restrict the mix; empty = all nine paper workloads.
  std::vector<std::string> workload_names;
  /// Single seed for the whole trace; pair it with ClusterConfig::seed for
  /// a fully reproducible fleet experiment.
  std::uint64_t seed = 42;
};

/// Deterministic (seeded) fleet-scale job list per the configuration.
std::vector<Job> generate_fleet_trace(const FleetTraceConfig& config);

/// Wide-topology preset of FleetTraceConfig, tuned for fleets whose
/// servers are multi-node racks (graph::dgx_rack / graph::summit_rack, on
/// the >64-vertex wide matching path): a denser arrival stream and a job
/// mix up to `max_gpus` = 12 accelerators, so placements regularly span
/// node boundaries and the busy mask exercises several mask words. Pass
/// the returned config to generate_fleet_trace (tweak fields first as
/// needed); pair `seed` with cluster::ClusterConfig::seed as usual.
FleetTraceConfig rack_trace_config(std::size_t num_jobs = 1000,
                                   std::uint64_t seed = 42);

/// Fleet-scale preset of FleetTraceConfig for 1k/10k-server sweeps (the
/// sharded-dispatcher benches and tests): `servers * jobs_per_server`
/// jobs whose Poisson arrival rate scales linearly with the fleet size,
/// so per-server pressure — and thus queue depth and placement mix —
/// stays comparable as the fleet grows from tens to tens of thousands of
/// servers instead of the stream going idle. GPU range and duration tail
/// match the FleetTraceConfig defaults; tweak the returned config before
/// passing it to generate_fleet_trace, and pair `seed` with
/// cluster::ClusterConfig::seed as usual. Throws via generate_fleet_trace
/// when `servers` or `jobs_per_server` is 0.
FleetTraceConfig fleet_scale_trace_config(std::size_t servers,
                                          std::size_t jobs_per_server = 10,
                                          std::uint64_t seed = 42);

}  // namespace mapa::workload
