#pragma once
// Random job-file generation following the paper's methodology (§4, "Jobs
// configuration"): a uniform mix of the workloads, each requesting a
// uniformly distributed number of GPUs in [min_gpus, max_gpus] (the paper
// uses 1..5, citing Philly's observation that multi-GPU request sizes are
// roughly uniform).

#include <cstdint>
#include <vector>

#include "workload/job.hpp"

namespace mapa::workload {

struct GeneratorConfig {
  std::size_t num_jobs = 300;   // paper's job-file size
  std::size_t min_gpus = 1;
  std::size_t max_gpus = 5;
  /// Restrict the mix; empty = all nine paper workloads.
  std::vector<std::string> workload_names;
  /// Mean inter-arrival gap in seconds; 0 = all jobs arrive at time 0
  /// (the paper's setup: the whole file is queued up front).
  double mean_interarrival_s = 0.0;
  std::uint64_t seed = 42;
};

/// Deterministic (seeded) job list per the configuration.
std::vector<Job> generate_jobs(const GeneratorConfig& config);

}  // namespace mapa::workload
