#include "workload/exec_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "score/effbw_model.hpp"

namespace mapa::workload {

namespace {

/// Ring all-reduce traffic factor, normalized to 1 at two GPUs.
double traffic_factor(std::size_t gpus) {
  if (gpus <= 1) return 0.0;
  const auto k = static_cast<double>(gpus);
  return 2.0 * (k - 1.0) / k;  // == 1.0 at k == 2
}

/// EffBW floor: even the worst allocation communicates at some PCIe-class
/// rate; prevents division blow-ups for pathological inputs.
constexpr double kMinEffBw = 4.0;

}  // namespace

double ExecModel::reference_double_nvlink_bw() {
  return score::predict_effective_bandwidth(
      score::LinkCensus{.doubles = 1, .singles = 0, .pcie = 0});
}

double ExecModel::reference_pcie_bw() {
  return score::predict_effective_bandwidth(
      score::LinkCensus{.doubles = 0, .singles = 0, .pcie = 1});
}

ExecModel::ExecModel(const WorkloadProfile& profile) : profile_(profile) {
  if (profile.ref_exec_time_s <= 0.0) {
    throw std::invalid_argument("ExecModel: non-positive reference time");
  }
  if (profile.pcie_slowdown < 1.0) {
    throw std::invalid_argument("ExecModel: pcie_slowdown must be >= 1");
  }
  const double b_double = reference_double_nvlink_bw();
  const double b_pcie = reference_pcie_bw();
  const double s = profile.pcie_slowdown;
  volume_gb_ =
      profile.ref_exec_time_s * (s - 1.0) / (1.0 / b_pcie - 1.0 / b_double);
  compute_s_ = profile.ref_exec_time_s - volume_gb_ / b_double;
  if (compute_s_ < 0.0) {
    throw std::invalid_argument(
        "ExecModel: slowdown too large for the reference time");
  }
}

double ExecModel::exec_time_s(std::size_t gpus, double effbw_gbps,
                              double iter_scale) const {
  if (gpus == 0) throw std::invalid_argument("ExecModel: zero gpus");
  if (iter_scale < 0.0) {
    throw std::invalid_argument("ExecModel: negative iter_scale");
  }
  const double factor = traffic_factor(gpus);
  if (factor == 0.0) return compute_s_ * iter_scale;
  const double bw = std::max(effbw_gbps, kMinEffBw);
  return (compute_s_ + volume_gb_ * factor / bw) * iter_scale;
}

double ExecModel::speedup_vs_pcie(std::size_t gpus, double effbw_gbps) const {
  const double t_pcie = exec_time_s(gpus, reference_pcie_bw());
  return t_pcie / exec_time_s(gpus, effbw_gbps);
}

}  // namespace mapa::workload
