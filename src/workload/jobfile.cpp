#include "workload/jobfile.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace mapa::workload {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  std::ostringstream os;
  os << "job file parse error at line " << line << ": " << message;
  throw std::runtime_error(os.str());
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(trim(field));
  return fields;
}

bool parse_bool(const std::string& text, std::size_t line) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "true" || lower == "1" || lower == "yes") return true;
  if (lower == "false" || lower == "0" || lower == "no") return false;
  fail(line, "expected boolean, got '" + text + "'");
}

}  // namespace

std::vector<Job> parse_job_file(std::istream& in) {
  std::vector<Job> jobs;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    if (trim(raw).empty()) continue;

    const std::vector<std::string> fields = split_fields(raw);
    if (fields.size() < 5 || fields.size() > 7) {
      fail(line_no,
           "expected 5-7 fields: id, workload, num_gpus, topology, "
           "bw_sensitive[, arrival_s[, iter_scale]]");
    }

    Job job;
    try {
      job.id = std::stoi(fields[0]);
    } catch (const std::exception&) {
      fail(line_no, "bad job id '" + fields[0] + "'");
    }
    job.workload = fields[1];
    if (find_workload(job.workload) == nullptr) {
      fail(line_no, "unknown workload '" + job.workload + "'");
    }
    try {
      const int gpus = std::stoi(fields[2]);
      if (gpus <= 0) fail(line_no, "num_gpus must be positive");
      job.num_gpus = static_cast<std::size_t>(gpus);
    } catch (const std::runtime_error&) {
      throw;
    } catch (const std::exception&) {
      fail(line_no, "bad num_gpus '" + fields[2] + "'");
    }
    const auto kind = graph::parse_pattern_kind(fields[3]);
    if (!kind) fail(line_no, "unknown topology '" + fields[3] + "'");
    job.pattern = job.num_gpus <= 1 ? graph::PatternKind::kSingle : *kind;
    job.bandwidth_sensitive = parse_bool(fields[4], line_no);
    if (fields.size() >= 6) {
      try {
        job.arrival_time_s = std::stod(fields[5]);
      } catch (const std::exception&) {
        fail(line_no, "bad arrival time '" + fields[5] + "'");
      }
      if (job.arrival_time_s < 0.0) fail(line_no, "negative arrival time");
    }
    if (fields.size() >= 7) {
      try {
        job.iter_scale = std::stod(fields[6]);
      } catch (const std::exception&) {
        fail(line_no, "bad iter_scale '" + fields[6] + "'");
      }
      if (job.iter_scale <= 0.0) fail(line_no, "iter_scale must be positive");
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<Job> parse_job_file_string(const std::string& text) {
  std::istringstream in(text);
  return parse_job_file(in);
}

std::string serialize_job_file(const std::vector<Job>& jobs) {
  std::ostringstream os;
  os << "# id, workload, num_gpus, topology, bw_sensitive, arrival_s, "
        "iter_scale\n";
  for (const Job& job : jobs) {
    os << job.id << ", " << job.workload << ", " << job.num_gpus << ", "
       << graph::to_string(job.pattern) << ", "
       << (job.bandwidth_sensitive ? "true" : "false") << ", "
       << util::format_double(job.arrival_time_s) << ", "
       << util::format_double(job.iter_scale) << '\n';
  }
  return os.str();
}

}  // namespace mapa::workload
