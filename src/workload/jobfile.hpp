#pragma once
// Job-file text format, mirroring Fig. 14's
// "ID, NumGPUs, Topology, BW Sensitive" rows with the workload name and
// optional arrival time appended:
//
//   # id, workload, num_gpus, topology, bw_sensitive[, arrival_s[, iters]]
//   1, vgg-16, 3, Ring, true
//   2, googlenet, 4, Ring, false, 12.5
//
// '#' starts a comment; blank lines are skipped.

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace mapa::workload {

/// Parse a job file; throws std::runtime_error with a line number on
/// malformed input.
std::vector<Job> parse_job_file(std::istream& in);
std::vector<Job> parse_job_file_string(const std::string& text);

/// Serialize jobs (round-trips through parse_job_file).
std::string serialize_job_file(const std::vector<Job>& jobs);

}  // namespace mapa::workload
