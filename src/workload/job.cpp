#include "workload/job.hpp"

namespace mapa::workload {

graph::Graph Job::application_graph() const {
  if (num_gpus <= 1) return graph::single_gpu();
  return graph::make_pattern(pattern, num_gpus);
}

const WorkloadProfile& Job::profile() const {
  return workload_by_name(workload);
}

}  // namespace mapa::workload
