#include "workload/generator.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace mapa::workload {

namespace {

/// Resolve a workload-name list into profile pointers (empty = all nine).
std::vector<const WorkloadProfile*> resolve_mix(
    const std::vector<std::string>& names) {
  std::vector<const WorkloadProfile*> mix;
  if (names.empty()) {
    for (const WorkloadProfile& w : all_workloads()) mix.push_back(&w);
  } else {
    for (const std::string& name : names) {
      mix.push_back(&workload_by_name(name));
    }
  }
  return mix;
}

Job draw_job(util::Rng& rng, const std::vector<const WorkloadProfile*>& mix,
             int id, std::size_t min_gpus, std::size_t max_gpus) {
  const WorkloadProfile* profile = mix[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(mix.size()) - 1))];
  Job job;
  job.id = id;
  job.workload = profile->name;
  job.num_gpus = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(min_gpus),
                      static_cast<std::int64_t>(max_gpus)));
  job.pattern = job.num_gpus <= 1 ? graph::PatternKind::kSingle
                                  : profile->pattern;
  job.bandwidth_sensitive = profile->bandwidth_sensitive;
  return job;
}

}  // namespace

std::vector<Job> generate_jobs(const GeneratorConfig& config) {
  if (config.num_jobs == 0) {
    throw std::invalid_argument("generate_jobs: zero jobs requested");
  }
  if (config.min_gpus == 0 || config.min_gpus > config.max_gpus) {
    throw std::invalid_argument("generate_jobs: bad GPU range");
  }

  const auto mix = resolve_mix(config.workload_names);
  util::Rng rng(config.seed);
  std::vector<Job> jobs;
  jobs.reserve(config.num_jobs);
  double arrival = 0.0;
  for (std::size_t i = 0; i < config.num_jobs; ++i) {
    Job job = draw_job(rng, mix, static_cast<int>(i) + 1, config.min_gpus,
                       config.max_gpus);
    if (config.mean_interarrival_s > 0.0) {
      // Exponential inter-arrival (Poisson process).
      arrival += -config.mean_interarrival_s * std::log(1.0 - rng.uniform());
      job.arrival_time_s = arrival;
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<Job> generate_fleet_trace(const FleetTraceConfig& config) {
  if (config.num_jobs == 0) {
    throw std::invalid_argument("generate_fleet_trace: zero jobs requested");
  }
  if (config.min_gpus == 0 || config.min_gpus > config.max_gpus) {
    throw std::invalid_argument("generate_fleet_trace: bad GPU range");
  }
  if (!(config.arrival_rate_per_s > 0.0)) {
    throw std::invalid_argument(
        "generate_fleet_trace: arrival rate must be > 0");
  }
  if (!(config.duration_alpha > 0.0)) {
    throw std::invalid_argument(
        "generate_fleet_trace: duration alpha must be > 0");
  }
  if (!(config.duration_tail_cap >= 1.0)) {
    throw std::invalid_argument(
        "generate_fleet_trace: duration tail cap must be >= 1");
  }

  const auto mix = resolve_mix(config.workload_names);
  const double mean_gap_s = 1.0 / config.arrival_rate_per_s;
  // Bounded Pareto inverse CDF on [1, cap]: most draws land near 1, the
  // tail decays as x^-alpha until the cap.
  const double cap_term =
      1.0 - std::pow(config.duration_tail_cap, -config.duration_alpha);

  util::Rng rng(config.seed);
  std::vector<Job> jobs;
  jobs.reserve(config.num_jobs);
  double arrival = 0.0;
  for (std::size_t i = 0; i < config.num_jobs; ++i) {
    Job job = draw_job(rng, mix, static_cast<int>(i) + 1, config.min_gpus,
                       config.max_gpus);
    arrival += -mean_gap_s * std::log(1.0 - rng.uniform());
    job.arrival_time_s = arrival;
    job.iter_scale =
        std::pow(1.0 - rng.uniform() * cap_term, -1.0 / config.duration_alpha);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

FleetTraceConfig rack_trace_config(std::size_t num_jobs, std::uint64_t seed) {
  FleetTraceConfig config;
  config.num_jobs = num_jobs;
  config.seed = seed;
  // A rack absorbs many single-node jobs at once, so the stream is denser
  // than the single-server default; 12-GPU jobs overflow any one Summit or
  // DGX node and force cross-node (multi-mask-word) placements.
  config.arrival_rate_per_s = 0.2;
  config.max_gpus = 12;
  return config;
}

ChaosTraceConfig chaos_trace_config(std::size_t servers,
                                    double per_server_mtbf_s,
                                    std::uint64_t seed) {
  if (servers == 0) {
    throw std::invalid_argument("chaos_trace_config: zero servers");
  }
  if (!(per_server_mtbf_s > 0.0)) {
    throw std::invalid_argument(
        "chaos_trace_config: per-server MTBF must be > 0");
  }
  ChaosTraceConfig config;
  // Independent per-server fault clocks superpose into one Poisson
  // process whose rate is the sum, i.e. fleet MTBF = per-server MTBF / N.
  config.mtbf_s = per_server_mtbf_s / static_cast<double>(servers);
  config.seed = seed;
  return config;
}

FleetTraceConfig fleet_scale_trace_config(std::size_t servers,
                                          std::size_t jobs_per_server,
                                          std::uint64_t seed) {
  FleetTraceConfig config;
  config.num_jobs = servers * jobs_per_server;
  config.seed = seed;
  // Hold per-server arrival pressure at the single-server default
  // (0.05 jobs/s each): a 10k-server fleet sees a 500 jobs/s aggregate
  // stream, so the dispatcher — not the workload — is what the sweep
  // stresses as the fleet grows.
  config.arrival_rate_per_s = 0.05 * static_cast<double>(servers);
  return config;
}

}  // namespace mapa::workload
