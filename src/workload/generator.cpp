#include "workload/generator.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace mapa::workload {

std::vector<Job> generate_jobs(const GeneratorConfig& config) {
  if (config.num_jobs == 0) {
    throw std::invalid_argument("generate_jobs: zero jobs requested");
  }
  if (config.min_gpus == 0 || config.min_gpus > config.max_gpus) {
    throw std::invalid_argument("generate_jobs: bad GPU range");
  }

  std::vector<const WorkloadProfile*> mix;
  if (config.workload_names.empty()) {
    for (const WorkloadProfile& w : all_workloads()) mix.push_back(&w);
  } else {
    for (const std::string& name : config.workload_names) {
      mix.push_back(&workload_by_name(name));
    }
  }

  util::Rng rng(config.seed);
  std::vector<Job> jobs;
  jobs.reserve(config.num_jobs);
  double arrival = 0.0;
  for (std::size_t i = 0; i < config.num_jobs; ++i) {
    const WorkloadProfile* profile = mix[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mix.size()) - 1))];
    Job job;
    job.id = static_cast<int>(i) + 1;
    job.workload = profile->name;
    job.num_gpus = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(config.min_gpus),
                        static_cast<std::int64_t>(config.max_gpus)));
    job.pattern = job.num_gpus <= 1 ? graph::PatternKind::kSingle
                                    : profile->pattern;
    job.bandwidth_sensitive = profile->bandwidth_sensitive;
    if (config.mean_interarrival_s > 0.0) {
      // Exponential inter-arrival (Poisson process).
      arrival += -config.mean_interarrival_s * std::log(1.0 - rng.uniform());
      job.arrival_time_s = arrival;
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace mapa::workload
