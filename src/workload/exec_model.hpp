#pragma once
// Execution-time model: the paper establishes (Fig. 11c, Fig. 16) that a
// bandwidth-sensitive job's execution time is a decreasing function of the
// allocation's effective bandwidth, and flat for insensitive jobs. We make
// that relation explicit:
//
//   T(k, EffBW) = iter_scale * ( C  +  V * f(k) / EffBW )
//
// where C is the compute time, V the 2-GPU communication volume, and
// f(k) = 2 (k - 1) / k the ring all-reduce per-GPU traffic factor
// (f(1) = 0: single-GPU jobs do not communicate; f(4)/f(2) = 1.5 makes
// 4-GPU runs slower on the same link, as in Fig. 6).
//
// C and V are derived per workload from two calibration points — the
// 2-GPU double-NVLink reference time and the PCIe slowdown (Fig. 2b) —
// using the model's own bandwidths for those two allocations, so the
// calibration is exact by construction:
//   V = T_ref (s - 1) / (1/B_pcie - 1/B_double),   C = T_ref - V / B_double.

#include "workload/profile.hpp"

namespace mapa::workload {

class ExecModel {
 public:
  /// Derive the (C, V) parameters for a workload.
  explicit ExecModel(const WorkloadProfile& profile);

  /// Execution time (seconds) on `gpus` devices whose allocation measures
  /// `effbw_gbps` effective bandwidth. `iter_scale` scales iterations
  /// relative to the profile's reference run (Fig. 6 sweeps this).
  /// EffBW is floored at a PCIe-class minimum so degenerate inputs cannot
  /// produce unbounded times.
  double exec_time_s(std::size_t gpus, double effbw_gbps,
                     double iter_scale = 1.0) const;

  /// Fig. 2b style speedup: time on PCIe / time on this allocation.
  double speedup_vs_pcie(std::size_t gpus, double effbw_gbps) const;

  double compute_seconds() const { return compute_s_; }
  double comm_volume_gb() const { return volume_gb_; }

  /// Model bandwidths of the two calibration allocations (Eq. 2 at
  /// (1,0,0) and (0,0,1)).
  static double reference_double_nvlink_bw();
  static double reference_pcie_bw();

 private:
  const WorkloadProfile profile_;
  double compute_s_ = 0.0;
  double volume_gb_ = 0.0;
};

}  // namespace mapa::workload
