#pragma once
// Link census of an allocation: how many Double NVLinks (x), Single
// NVLinks (y), and PCIe links (z) the application pattern actually uses in
// a matching pattern. The (x, y, z) triple is the input to the paper's
// effective-bandwidth model (Eq. 2) and the key that distinguishes
// allocation qualities.

#include <span>

#include "graph/graph.hpp"
#include "match/match.hpp"

namespace mapa::score {

struct LinkCensus {
  int doubles = 0;  // x: double NVLink edges used
  int singles = 0;  // y: single NVLink edges used (v1 or v2)
  int pcie = 0;     // z: PCIe edges used

  int total() const { return doubles + singles + pcie; }
  bool operator==(const LinkCensus&) const = default;
};

/// Census of the hardware edges used by `pattern` under `m` in `hardware`
/// (the edge set E(P) mapped through the match). NVSwitch links count as
/// doubles (same 50 GB/s class); kNone edges (possible only in hardware
/// graphs built without PCIe fallback) are ignored.
LinkCensus used_link_census(const graph::Graph& pattern,
                            const graph::Graph& hardware,
                            const match::Match& m);

/// Census of *all* hardware edges among a vertex set (used for ideal /
/// aggregate bandwidth accounting, e.g. the Fig. 4 fragmentation study).
LinkCensus clique_link_census(const graph::Graph& hardware,
                              std::span<const graph::VertexId> vertices);

}  // namespace mapa::score
