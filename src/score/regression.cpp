#include "score/regression.hpp"

#include <stdexcept>

#include "util/matrix.hpp"
#include "util/stats.hpp"

namespace mapa::score {

std::vector<double> fit_effbw_model(std::span<const EffBwSample> samples) {
  if (samples.size() < kNumFeatures) {
    throw std::invalid_argument(
        "fit_effbw_model: need at least 14 samples for a full-rank fit");
  }
  util::Matrix design(samples.size(), kNumFeatures);
  std::vector<double> rhs(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto features = effbw_features(samples[i].census);
    for (std::size_t j = 0; j < kNumFeatures; ++j) {
      design(i, j) = features[j];
    }
    rhs[i] = samples[i].measured_gbps;
  }
  return util::least_squares(design, rhs);
}

FitReport evaluate_theta(std::span<const double> theta,
                         std::span<const EffBwSample> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("evaluate_theta: no samples");
  }
  std::vector<double> predicted;
  std::vector<double> actual;
  predicted.reserve(samples.size());
  actual.reserve(samples.size());
  for (const EffBwSample& s : samples) {
    predicted.push_back(predict_effective_bandwidth(theta, s.census));
    actual.push_back(s.measured_gbps);
  }
  FitReport report;
  report.theta.assign(theta.begin(), theta.end());
  report.relative_error = util::mean_relative_error(predicted, actual);
  report.rmse = util::rmse(predicted, actual);
  report.mae = util::mae(predicted, actual);
  report.pearson = util::pearson(predicted, actual);
  return report;
}

FitReport fit_and_evaluate(std::span<const EffBwSample> samples) {
  const std::vector<double> theta = fit_effbw_model(samples);
  return evaluate_theta(theta, samples);
}

}  // namespace mapa::score
