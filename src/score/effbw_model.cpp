#include "score/effbw_model.hpp"

#include <stdexcept>

namespace mapa::score {

std::array<double, kNumFeatures> effbw_features(const LinkCensus& census) {
  const auto x = static_cast<double>(census.doubles);
  const auto y = static_cast<double>(census.singles);
  const auto z = static_cast<double>(census.pcie);
  return {
      x,
      y,
      z,
      1.0 / (x + 1.0),
      1.0 / (y + 1.0),
      1.0 / (z + 1.0),
      x * y,
      y * z,
      z * x,
      1.0 / (x * y + 1.0),
      1.0 / (y * z + 1.0),
      1.0 / (z * x + 1.0),
      x * y * z,
      1.0 / (x * y * z + 1.0),
  };
}

double predict_effective_bandwidth(std::span<const double> theta,
                                   const LinkCensus& census) {
  if (theta.size() != kNumFeatures) {
    throw std::invalid_argument(
        "predict_effective_bandwidth: theta must have 14 entries");
  }
  const auto features = effbw_features(census);
  double result = 0.0;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    result += theta[i] * features[i];
  }
  return result;
}

double predict_effective_bandwidth(const LinkCensus& census) {
  return predict_effective_bandwidth(kPaperTheta, census);
}

double predict_effective_bandwidth(const graph::Graph& pattern,
                                   const graph::Graph& hardware,
                                   const match::Match& m,
                                   std::span<const double> theta) {
  return predict_effective_bandwidth(theta,
                                     used_link_census(pattern, hardware, m));
}

double predict_effective_bandwidth(const graph::Graph& pattern,
                                   const graph::Graph& hardware,
                                   const match::Match& m) {
  return predict_effective_bandwidth(pattern, hardware, m, kPaperTheta);
}

}  // namespace mapa::score
