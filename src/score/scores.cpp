#include "score/scores.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "match/enumerator.hpp"

namespace mapa::score {

double aggregated_bandwidth(const graph::Graph& pattern,
                            const graph::Graph& hardware,
                            const match::Match& m) {
  if (m.mapping.size() != pattern.num_vertices()) {
    throw std::invalid_argument("aggregated_bandwidth: match size mismatch");
  }
  double total = 0.0;
  for (const graph::Edge& e : pattern.edges()) {
    total += hardware.edge_bandwidth(m.mapping[e.u], m.mapping[e.v]);
  }
  return total;
}

namespace {

/// Eq. 3 core over a removed-vertex mask; the <= 64-vertex fast path is a
/// single word, larger graphs walk the mask words.
double preserved_over_mask(const graph::Graph& hardware,
                           const graph::VertexMask& removed) {
  if (hardware.num_vertices() == 0) return 0.0;  // mask has no words
  double total = 0.0;
  if (hardware.num_vertices() <= graph::BitGraph::kMaxVertices) {
    const std::uint64_t gone = removed.word(0);
    for (const graph::Edge& e : hardware.edges()) {
      if ((((gone >> e.u) | (gone >> e.v)) & 1) == 0) {
        total += e.bandwidth_gbps;
      }
    }
    return total;
  }
  for (const graph::Edge& e : hardware.edges()) {
    if (!removed.test(e.u) && !removed.test(e.v)) total += e.bandwidth_gbps;
  }
  return total;
}

}  // namespace

double preserved_bandwidth(const graph::Graph& hardware, const match::Match& m,
                           const std::vector<bool>& busy) {
  if (!busy.empty() && busy.size() != hardware.num_vertices()) {
    throw std::invalid_argument("preserved_bandwidth: busy mask mismatch");
  }
  graph::VertexMask removed = graph::VertexMask::of_busy(busy);
  if (removed.empty()) removed = graph::VertexMask(hardware.num_vertices());
  for (const graph::VertexId v : m.mapping) {
    if (v >= hardware.num_vertices()) {
      throw std::invalid_argument("preserved_bandwidth: vertex out of range");
    }
    removed.set(v);
  }
  return preserved_over_mask(hardware, removed);
}

double preserved_bandwidth(const graph::Graph& hardware, const match::Match& m,
                           const graph::VertexMask& busy) {
  if (!busy.empty() && busy.size() != hardware.num_vertices()) {
    throw std::invalid_argument("preserved_bandwidth: busy mask mismatch");
  }
  graph::VertexMask removed =
      busy.empty() ? graph::VertexMask(hardware.num_vertices()) : busy;
  for (const graph::VertexId v : m.mapping) {
    if (v >= hardware.num_vertices()) {
      throw std::invalid_argument("preserved_bandwidth: vertex out of range");
    }
    removed.set(v);
  }
  return preserved_over_mask(hardware, removed);
}

double clique_bandwidth(const graph::Graph& hardware,
                        std::span<const graph::VertexId> vertices) {
  double total = 0.0;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      total += hardware.edge_bandwidth(vertices[i], vertices[j]);
    }
  }
  return total;
}

double ideal_aggregated_bandwidth(const graph::Graph& pattern,
                                  const graph::Graph& hardware) {
  double best = 0.0;
  match::for_each_match(
      pattern, hardware,
      [&](const match::Match& m) {
        best = std::max(best, aggregated_bandwidth(pattern, hardware, m));
        return true;
      });
  return best;
}

double ideal_clique_bandwidth(const graph::Graph& hardware, std::size_t k) {
  const std::size_t n = hardware.num_vertices();
  if (k > n) {
    throw std::invalid_argument("ideal_clique_bandwidth: k exceeds vertices");
  }
  if (k <= 1) return 0.0;

  std::vector<graph::VertexId> chosen;
  chosen.reserve(k);
  double best = 0.0;
  // Enumerate C(n, k) subsets, tracking the running clique bandwidth.
  std::function<void(graph::VertexId, double)> pick = [&](graph::VertexId from,
                                                          double acc) {
    if (chosen.size() == k) {
      best = std::max(best, acc);
      return;
    }
    const std::size_t still_needed = k - chosen.size();
    for (graph::VertexId v = from; v + still_needed <= n; ++v) {
      double gain = 0.0;
      for (const graph::VertexId c : chosen) {
        gain += hardware.edge_bandwidth(c, v);
      }
      chosen.push_back(v);
      pick(v + 1, acc + gain);
      chosen.pop_back();
    }
  };
  pick(0, 0.0);
  return best;
}

}  // namespace mapa::score
