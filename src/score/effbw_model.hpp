#pragma once
// Predicted Effective Bandwidth model (paper Eq. 2 + Table 2).
//
// The model maps a link census (x double NVLinks, y single NVLinks, z PCIe
// links) to predicted effective bandwidth through 14 fixed nonlinear
// features whose coefficients theta are learned by least squares. The
// paper's published Table 2 coefficients are provided as the default
// parameter set; `score::fit_effbw_model` (regression.hpp) re-learns theta
// from microbenchmark samples.
//
// Calibration cross-checks against the paper's own quoted numbers:
//   predict(kPaperTheta, {2,1,0}) == 57.857  (the "57.85 GBps" median of
//                                             Greedy/Preserve in §4.1)
//   predict(kPaperTheta, {0,0,0}) == 12.337  (the "12.33 GBps" Greedy 25th
//                                             percentile in §4.1)

#include <array>
#include <span>

#include "score/census.hpp"

namespace mapa::score {

inline constexpr std::size_t kNumFeatures = 14;

/// Paper Table 2 coefficient values theta_1..theta_14.
inline constexpr std::array<double, kNumFeatures> kPaperTheta = {
    16.396, 4.536,  1.556,  -20.694, -9.467, 7.615,  -7.973,
    12.733, -4.195, -8.413,  62.851, 27.418, -5.114, -46.973,
};

/// The 14 Eq. 2 features of a census: linear (x, y, z), inverse-linear,
/// pairwise products, inverse-pairwise, triplet, inverse-triplet.
std::array<double, kNumFeatures> effbw_features(const LinkCensus& census);

/// Predicted effective bandwidth (GB/s) = theta . features(census).
double predict_effective_bandwidth(std::span<const double> theta,
                                   const LinkCensus& census);

/// Predict with the paper's Table 2 coefficients.
double predict_effective_bandwidth(const LinkCensus& census);

/// Predict for a concrete allocation: census the links `pattern` uses in
/// `hardware` under `m`, then apply the model.
double predict_effective_bandwidth(const graph::Graph& pattern,
                                   const graph::Graph& hardware,
                                   const match::Match& m,
                                   std::span<const double> theta);
double predict_effective_bandwidth(const graph::Graph& pattern,
                                   const graph::Graph& hardware,
                                   const match::Match& m);

}  // namespace mapa::score
