#pragma once
// The paper's pattern-scoring metrics:
//   * Aggregated Bandwidth (Eq. 1) — total bandwidth of the hardware links
//     the application pattern actually uses in a match.
//   * Preserved Bandwidth (Eq. 3) — bandwidth remaining in the hardware
//     graph after removing the matched vertices and their incident edges.
//   * Ideal-allocation bandwidth — the best achievable aggregated
//     bandwidth for a job of the same shape on an empty machine (the
//     denominator of the Fig. 4 fragmentation metric).

#include <span>

#include "graph/bitgraph.hpp"
#include "graph/graph.hpp"
#include "match/match.hpp"

namespace mapa::score {

/// Eq. 1: sum of w(e) over e in E(P) mapped through the match.
double aggregated_bandwidth(const graph::Graph& pattern,
                            const graph::Graph& hardware,
                            const match::Match& m);

/// Eq. 3: sum of edge bandwidths of the subgraph of `hardware` induced by
/// the vertices NOT used by the match (G \ M). `busy`, when non-empty,
/// marks additional vertices already allocated to other jobs, which are
/// excluded from the preserved set as well.
double preserved_bandwidth(const graph::Graph& hardware, const match::Match& m,
                           const std::vector<bool>& busy = {});

/// Same, with the busy set already in mask form (the representation the
/// matching core carries); avoids re-deriving the mask per scored match.
double preserved_bandwidth(const graph::Graph& hardware, const match::Match& m,
                           const graph::VertexMask& busy);

/// Sum of all hardware-edge bandwidths among an arbitrary vertex set
/// (aggregate bandwidth of an allocation viewed as a clique, as used by
/// the Fig. 4 BW_allocated / BW_ideal ratio).
double clique_bandwidth(const graph::Graph& hardware,
                        std::span<const graph::VertexId> vertices);

/// Best aggregated bandwidth any match of `pattern` achieves on an empty
/// `hardware` graph (BW_IdealAllocation in Fig. 4). Exhaustive search via
/// the symmetric-broken enumerator.
double ideal_aggregated_bandwidth(const graph::Graph& pattern,
                                  const graph::Graph& hardware);

/// Best clique bandwidth over all ways to choose k vertices (clique-form
/// ideal used when the job's pattern is unknown). Exhaustive over C(n, k).
double ideal_clique_bandwidth(const graph::Graph& hardware, std::size_t k);

}  // namespace mapa::score
