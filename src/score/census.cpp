#include "score/census.hpp"

#include <stdexcept>

namespace mapa::score {

namespace {

using interconnect::LinkType;

void tally(LinkCensus& census, LinkType type) {
  switch (type) {
    case LinkType::kNvLink2Double:
    case LinkType::kNvSwitch:
      ++census.doubles;
      return;
    case LinkType::kNvLink1:
    case LinkType::kNvLink2:
      ++census.singles;
      return;
    case LinkType::kPcie:
      ++census.pcie;
      return;
    case LinkType::kNone:
      return;  // unreachable pair in an NVLink-only graph: no usable link
  }
  throw std::invalid_argument("tally: unknown link type");
}

}  // namespace

LinkCensus used_link_census(const graph::Graph& pattern,
                            const graph::Graph& hardware,
                            const match::Match& m) {
  if (m.mapping.size() != pattern.num_vertices()) {
    throw std::invalid_argument("used_link_census: match/pattern mismatch");
  }
  LinkCensus census;
  for (const graph::Edge& e : pattern.edges()) {
    tally(census, hardware.edge_type(m.mapping[e.u], m.mapping[e.v]));
  }
  return census;
}

LinkCensus clique_link_census(const graph::Graph& hardware,
                              std::span<const graph::VertexId> vertices) {
  LinkCensus census;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      tally(census, hardware.edge_type(vertices[i], vertices[j]));
    }
  }
  return census;
}

}  // namespace mapa::score
