#pragma once
// Least-squares fitting of the Eq. 2 effective-bandwidth model (paper
// §3.4.3). The model is nonlinear in (x, y, z) but linear in theta, so
// ordinary least squares over the expanded features is exact — no
// iterative optimizer needed.
//
// The paper trains on 31 samples: the exhaustive set of distinct
// (x, y, z) censuses reachable by 2–5-GPU allocations on the DGX-V,
// each labeled with a measured NCCL all-reduce bandwidth. We regenerate
// that sample set from our topology factories and the synthetic
// microbenchmark (interconnect/microbench.hpp).

#include <span>
#include <vector>

#include "score/census.hpp"
#include "score/effbw_model.hpp"

namespace mapa::score {

/// One training sample: a link census and its measured effective bandwidth.
struct EffBwSample {
  LinkCensus census;
  double measured_gbps = 0.0;
};

/// Quality metrics of a fit, as reported under Fig. 12.
struct FitReport {
  std::vector<double> theta;
  double relative_error = 0.0;  // mean |pred - actual| / actual
  double rmse = 0.0;
  double mae = 0.0;
  double pearson = 0.0;  // predicted vs actual correlation
};

/// Fit theta by least squares over the Eq. 2 features. Requires at least
/// kNumFeatures samples with distinct censuses; throws otherwise.
std::vector<double> fit_effbw_model(std::span<const EffBwSample> samples);

/// Fit and evaluate in one step.
FitReport fit_and_evaluate(std::span<const EffBwSample> samples);

/// Evaluate an existing theta against samples.
FitReport evaluate_theta(std::span<const double> theta,
                         std::span<const EffBwSample> samples);

}  // namespace mapa::score
