#pragma once
// Application-topology extraction (paper §3.1).
//
// Two paths, mirroring the paper:
//  * Source-code analysis — each NCCL API call implies a communication
//    structure over its rank set (AllReduce builds rings/trees, Broadcast
//    a tree, Gather/Scatter a star, AllToAll a clique). The application
//    graph is the union over all calls (Fig. 8: "combining the graph of
//    all NCCL API calls used in the program").
//  * Runtime profiling — pairwise traffic recorded in a CommEvent trace
//    becomes an edge wherever the observed volume exceeds a noise
//    threshold, so incidental traffic does not inflate the pattern.
//
// Both produce a pattern graph ready for the matcher, plus a bandwidth-
// sensitivity estimate in the spirit of Fig. 5/6.

#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "profile/trace.hpp"

namespace mapa::profile {

struct ExtractOptions {
  /// Pairwise traffic below this total volume is treated as noise and
  /// produces no edge (runtime-profiling path only).
  double min_total_bytes = 1.0;
  /// Collectives with per-call payloads at or above this size are modeled
  /// as rings (NCCL's large-message algorithm); smaller ones as trees
  /// (the size-dependent choice the paper describes in §3.1).
  double ring_threshold_bytes = 1.0e5;
};

/// The communication structure implied by one collective call over
/// `ranks` with `bytes` per call (source-analysis path). The rank order
/// defines ring order / tree layout; rank[0] is the root for rooted
/// collectives.
graph::Graph collective_structure(CollectiveKind kind,
                                  const std::vector<std::uint32_t>& ranks,
                                  double bytes,
                                  const ExtractOptions& options = {});

/// Application graph from a trace. The result has `rank_count(events)`
/// vertices (isolated vertices are kept — a rank that never communicates
/// still occupies a GPU). Throws on empty traces.
graph::Graph extract_application_graph(const std::vector<CommEvent>& events,
                                       const ExtractOptions& options = {});

/// Pairwise traffic totals (bytes) implied by a trace; collectives are
/// expanded through `collective_structure` with volume split evenly over
/// the structure's edges.
std::map<std::pair<graph::VertexId, graph::VertexId>, double>
pairwise_traffic(const std::vector<CommEvent>& events,
                 const ExtractOptions& options = {});

/// Bandwidth-sensitivity estimate from a trace (the Fig. 5 reasoning):
/// a job is bandwidth sensitive when it makes many large transfers —
/// total volume >= volume_threshold AND mean payload >= size_threshold
/// (the paper's ~1e5-byte boundary from Fig. 2a).
bool estimate_bandwidth_sensitivity(const std::vector<CommEvent>& events,
                                    double size_threshold_bytes = 1.0e5,
                                    double volume_threshold_bytes = 1.0e9);

}  // namespace mapa::profile
