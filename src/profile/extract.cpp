#include "profile/extract.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace mapa::profile {

namespace {

using graph::VertexId;

void require_distinct(const std::vector<std::uint32_t>& ranks) {
  std::set<std::uint32_t> unique(ranks.begin(), ranks.end());
  if (unique.size() != ranks.size()) {
    throw std::invalid_argument(
        "collective_structure: duplicate ranks in one call");
  }
}

void add_ring(graph::Graph& g, const std::vector<std::uint32_t>& ranks) {
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const auto a = static_cast<VertexId>(ranks[i]);
    const auto b = static_cast<VertexId>(ranks[(i + 1) % ranks.size()]);
    if (a != b) g.add_edge(a, b, interconnect::LinkType::kNone, 0.0);
  }
}

void add_tree(graph::Graph& g, const std::vector<std::uint32_t>& ranks) {
  // Balanced binary tree over the rank order, rooted at ranks[0].
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    for (const std::size_t child : {2 * i + 1, 2 * i + 2}) {
      if (child < ranks.size()) {
        g.add_edge(static_cast<VertexId>(ranks[i]),
                   static_cast<VertexId>(ranks[child]),
                   interconnect::LinkType::kNone, 0.0);
      }
    }
  }
}

void add_star(graph::Graph& g, const std::vector<std::uint32_t>& ranks) {
  for (std::size_t i = 1; i < ranks.size(); ++i) {
    g.add_edge(static_cast<VertexId>(ranks[0]),
               static_cast<VertexId>(ranks[i]),
               interconnect::LinkType::kNone, 0.0);
  }
}

void add_clique(graph::Graph& g, const std::vector<std::uint32_t>& ranks) {
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    for (std::size_t j = i + 1; j < ranks.size(); ++j) {
      g.add_edge(static_cast<VertexId>(ranks[i]),
                 static_cast<VertexId>(ranks[j]),
                 interconnect::LinkType::kNone, 0.0);
    }
  }
}

std::uint32_t highest_rank(const std::vector<std::uint32_t>& ranks) {
  return *std::max_element(ranks.begin(), ranks.end());
}

}  // namespace

graph::Graph collective_structure(CollectiveKind kind,
                                  const std::vector<std::uint32_t>& ranks,
                                  double bytes,
                                  const ExtractOptions& options) {
  if (ranks.size() < 2) {
    throw std::invalid_argument("collective_structure: need >= 2 ranks");
  }
  require_distinct(ranks);
  graph::Graph g(highest_rank(ranks) + 1);

  switch (kind) {
    case CollectiveKind::kAllReduce:
    case CollectiveKind::kAllGather:
    case CollectiveKind::kReduceScatter:
      // NCCL's bandwidth-bound collectives: rings for large payloads,
      // trees for small ones (§3.1).
      if (bytes >= options.ring_threshold_bytes) {
        add_ring(g, ranks);
      } else {
        add_tree(g, ranks);
      }
      return g;
    case CollectiveKind::kBroadcast:
    case CollectiveKind::kReduce:
      add_tree(g, ranks);
      return g;
    case CollectiveKind::kGather:
    case CollectiveKind::kScatter:
      add_star(g, ranks);
      return g;
    case CollectiveKind::kAllToAll:
      add_clique(g, ranks);
      return g;
  }
  throw std::invalid_argument("collective_structure: unknown kind");
}

std::map<std::pair<VertexId, VertexId>, double> pairwise_traffic(
    const std::vector<CommEvent>& events, const ExtractOptions& options) {
  std::map<std::pair<VertexId, VertexId>, double> traffic;
  for (const CommEvent& e : events) {
    if (!e.collective) {
      const auto a = static_cast<VertexId>(std::min(e.ranks[0], e.ranks[1]));
      const auto b = static_cast<VertexId>(std::max(e.ranks[0], e.ranks[1]));
      traffic[{a, b}] += e.total_bytes();
      continue;
    }
    const graph::Graph structure =
        collective_structure(*e.collective, e.ranks, e.bytes, options);
    if (structure.num_edges() == 0) continue;
    const double per_edge =
        e.total_bytes() / static_cast<double>(structure.num_edges());
    for (const graph::Edge& edge : structure.edges()) {
      traffic[{std::min(edge.u, edge.v), std::max(edge.u, edge.v)}] +=
          per_edge;
    }
  }
  return traffic;
}

graph::Graph extract_application_graph(const std::vector<CommEvent>& events,
                                       const ExtractOptions& options) {
  const std::uint32_t n = rank_count(events);
  if (n == 0) {
    throw std::invalid_argument("extract_application_graph: empty trace");
  }
  graph::Graph g(n, "extracted-" + std::to_string(n));
  for (const auto& [pair, bytes] : pairwise_traffic(events, options)) {
    if (bytes >= options.min_total_bytes) {
      g.add_edge(pair.first, pair.second, interconnect::LinkType::kNone, 0.0);
    }
  }
  return g;
}

bool estimate_bandwidth_sensitivity(const std::vector<CommEvent>& events,
                                    double size_threshold_bytes,
                                    double volume_threshold_bytes) {
  double total = 0.0;
  double weighted_size = 0.0;
  std::uint64_t calls = 0;
  for (const CommEvent& e : events) {
    total += e.total_bytes();
    weighted_size += e.bytes * static_cast<double>(e.count);
    calls += e.count;
  }
  if (calls == 0) return false;
  const double mean_payload = weighted_size / static_cast<double>(calls);
  return total >= volume_threshold_bytes &&
         mean_payload >= size_threshold_bytes;
}

}  // namespace mapa::profile
