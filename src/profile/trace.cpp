#include "profile/trace.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mapa::profile {

std::string to_string(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kAllReduce:
      return "allreduce";
    case CollectiveKind::kReduce:
      return "reduce";
    case CollectiveKind::kBroadcast:
      return "broadcast";
    case CollectiveKind::kGather:
      return "gather";
    case CollectiveKind::kScatter:
      return "scatter";
    case CollectiveKind::kAllGather:
      return "allgather";
    case CollectiveKind::kReduceScatter:
      return "reducescatter";
    case CollectiveKind::kAllToAll:
      return "alltoall";
  }
  throw std::invalid_argument("to_string(CollectiveKind): unknown kind");
}

std::optional<CollectiveKind> parse_collective_kind(const std::string& text) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "allreduce") return CollectiveKind::kAllReduce;
  if (lower == "reduce") return CollectiveKind::kReduce;
  if (lower == "broadcast") return CollectiveKind::kBroadcast;
  if (lower == "gather") return CollectiveKind::kGather;
  if (lower == "scatter") return CollectiveKind::kScatter;
  if (lower == "allgather") return CollectiveKind::kAllGather;
  if (lower == "reducescatter") return CollectiveKind::kReduceScatter;
  if (lower == "alltoall") return CollectiveKind::kAllToAll;
  return std::nullopt;
}

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  std::ostringstream os;
  os << "trace parse error at line " << line << ": " << message;
  throw std::runtime_error(os.str());
}

}  // namespace

std::vector<CommEvent> parse_trace(std::istream& in) {
  std::vector<CommEvent> events;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string kind;
    if (!(line >> kind)) continue;

    CommEvent event;
    if (kind == "p2p") {
      std::uint32_t a = 0, b = 0;
      if (!(line >> a >> b >> event.bytes)) {
        fail(line_no, "expected: p2p <src> <dst> <bytes> [count]");
      }
      if (a == b) fail(line_no, "p2p with identical endpoints");
      event.ranks = {a, b};
    } else if (kind == "coll") {
      std::string op;
      if (!(line >> op)) fail(line_no, "expected collective kind");
      const auto parsed = parse_collective_kind(op);
      if (!parsed) fail(line_no, "unknown collective '" + op + "'");
      event.collective = parsed;
      std::size_t nranks = 0;
      if (!(line >> nranks) || nranks < 2) {
        fail(line_no,
             "expected: coll <kind> <nranks>=2.. <rank>... <bytes> [count]");
      }
      event.ranks.reserve(nranks);
      for (std::size_t i = 0; i < nranks; ++i) {
        std::uint32_t r = 0;
        if (!(line >> r)) fail(line_no, "missing rank");
        event.ranks.push_back(r);
      }
      if (!(line >> event.bytes)) fail(line_no, "missing byte count");
      std::uint64_t repeats = 1;
      if (line >> repeats) event.count = repeats;
    } else {
      fail(line_no, "unknown event kind '" + kind + "'");
    }

    std::uint64_t count = 1;
    if (!event.collective && (line >> count)) {
      event.count = count;
    }
    if (event.bytes < 0.0) fail(line_no, "negative byte count");
    if (event.count == 0) fail(line_no, "zero repeat count");
    events.push_back(std::move(event));
  }
  return events;
}

std::vector<CommEvent> parse_trace_string(const std::string& text) {
  std::istringstream in(text);
  return parse_trace(in);
}

std::string serialize_trace(const std::vector<CommEvent>& events) {
  std::ostringstream os;
  os << "# kind participants bytes [count]\n";
  for (const CommEvent& e : events) {
    if (e.collective) {
      os << "coll " << to_string(*e.collective) << ' ' << e.ranks.size();
      for (const auto r : e.ranks) os << ' ' << r;
      os << ' ' << e.bytes << ' ' << e.count << '\n';
    } else {
      os << "p2p " << e.ranks[0] << ' ' << e.ranks[1] << ' ' << e.bytes
         << ' ' << e.count << '\n';
    }
  }
  return os.str();
}

std::uint32_t rank_count(const std::vector<CommEvent>& events) {
  std::uint32_t highest = 0;
  bool any = false;
  for (const CommEvent& e : events) {
    for (const auto r : e.ranks) {
      highest = std::max(highest, r);
      any = true;
    }
  }
  return any ? highest + 1 : 0;
}

}  // namespace mapa::profile
