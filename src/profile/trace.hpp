#pragma once
// Communication traces — the runtime-profiling path of paper §3.1.
//
// On a real machine the application topology is discovered by watching
// NVLink/PCIe counters (`nvidia-smi nvlink`, Fig. 9b) or by intercepting
// NCCL / cudaMemcpyPeer calls. Here a trace is a portable text log of
// communication events, standing in for those counters (see DESIGN.md):
//
//   # kind  participants          bytes   [count]
//   p2p     0 1                   1048576 16
//   coll    allreduce 4 0 1 2 3   4194304 100
//
// `p2p` records a source/destination pair; `coll` records a collective
// with an explicit rank count followed by the rank list and the per-call
// payload. The optional trailing count repeats the event (hardware
// counters report totals, not individual calls).

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace mapa::profile {

/// Collective kinds MAPA understands (the NCCL operations the paper lists
/// in §6: Reduce, AllReduce, Broadcast, Gather, Scatter, plus AllGather
/// and ReduceScatter which NCCL also provides).
enum class CollectiveKind {
  kAllReduce,
  kReduce,
  kBroadcast,
  kGather,
  kScatter,
  kAllGather,
  kReduceScatter,
  kAllToAll,
};

std::string to_string(CollectiveKind kind);
std::optional<CollectiveKind> parse_collective_kind(const std::string& text);

/// One communication event.
struct CommEvent {
  /// Point-to-point events have exactly two ranks; collectives any number
  /// >= 2. Ranks are job-local (0-based).
  std::vector<std::uint32_t> ranks;
  /// Collective kind; nullopt for raw point-to-point traffic.
  std::optional<CollectiveKind> collective;
  double bytes = 0.0;          // payload per call
  std::uint64_t count = 1;     // number of identical calls

  double total_bytes() const { return bytes * static_cast<double>(count); }
};

/// Parse a trace; throws std::runtime_error with a line number on
/// malformed input.
std::vector<CommEvent> parse_trace(std::istream& in);
std::vector<CommEvent> parse_trace_string(const std::string& text);

/// Serialize events (round-trips through parse_trace).
std::string serialize_trace(const std::vector<CommEvent>& events);

/// Highest rank mentioned plus one (the job's GPU count), 0 for empty.
std::uint32_t rank_count(const std::vector<CommEvent>& events);

}  // namespace mapa::profile
